// MatrixSpec / ExperimentSpec tests: the .matrix parser's diagnostics
// (exact messages with line numbers), cross-product expansion order,
// duplicate-cell detection, filtering, the validating builder, and one
// fast end-to-end cell run.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "framework/matrix.hpp"

namespace bgpsdn::framework {
namespace {

/// The exact what() of the std::invalid_argument `fn` must throw.
template <typename Fn>
std::string diagnostic_of(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return "";
}

// --- parsing: happy path ----------------------------------------------------

constexpr const char* kSmokeMatrix = R"(
# comment lines and blanks are skipped
matrix smoke
trials 3
base-seed 4000
topology clique 5
mrai 0.3
recompute-delay 0.1
axis sdn-frac 0 0.6
axis event withdrawal announcement
)";

TEST(Matrix, ParsesDirectivesFixedSettingsAndAxes) {
  const auto matrix = MatrixSpec::parse(kSmokeMatrix);
  EXPECT_EQ(matrix.name, "smoke");
  EXPECT_EQ(matrix.trials, 3u);
  EXPECT_EQ(matrix.base_seed, 4000u);
  EXPECT_EQ(matrix.base.topology, TopologyModel::kClique);
  EXPECT_EQ(matrix.base.topology_size, 5u);
  EXPECT_EQ(matrix.base.config.timers.mrai, core::Duration::seconds_f(0.3));
  EXPECT_EQ(matrix.base.config.recompute_delay,
            core::Duration::seconds_f(0.1));
  ASSERT_EQ(matrix.axes.size(), 2u);
  EXPECT_EQ(matrix.axes[0].name, "sdn-frac");
  EXPECT_EQ(matrix.axes[1].name, "event");
}

TEST(Matrix, ParsesFaultAndAnnouncementLines) {
  const auto matrix = MatrixSpec::parse(
      "topology ring 6\n"
      "announce 2 10.50.0.0/16\n"
      "fault-seed 99\n"
      "fault 5 link-down 1 2\n"
      "wait-quiet 7\n"
      "axis damping on off\n");
  ASSERT_EQ(matrix.base.announcements.size(), 1u);
  EXPECT_EQ(matrix.base.announcements[0].first, core::AsNumber{2});
  EXPECT_EQ(matrix.base.faults.seed, 99u);
  ASSERT_EQ(matrix.base.faults.events.size(), 1u);
  EXPECT_EQ(matrix.base.faults.events[0].at, core::Duration::seconds(5));
  EXPECT_EQ(matrix.base.wait_quiet, core::Duration::seconds(7));
}

// --- parsing: diagnostics ---------------------------------------------------

TEST(Matrix, UnknownKeyNamesItsLine) {
  EXPECT_EQ(diagnostic_of([] {
              MatrixSpec::parse("topology clique 5\nfrobnicate 3\n");
            }),
            "line 2: unknown key 'frobnicate'");
}

TEST(Matrix, UnknownAxisListsTheVocabulary) {
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("axis colour red blue\n"); }),
            "line 1: unknown axis 'colour' (known: topology, sdn-frac, "
            "sdn-count, event, spt, damping, controller, mrai, "
            "recompute-delay, replicas, election-timeout-ms)");
}

TEST(Matrix, MalformedAxisValueNamesAxisValueAndCause) {
  EXPECT_EQ(diagnostic_of([] {
              MatrixSpec::parse("axis topology cliq:16\n");
            }),
            "line 1: bad value 'cliq:16' for axis 'topology': unknown "
            "topology model 'cliq'");
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("axis sdn-frac 1.5\n"); }),
            "line 1: bad value '1.5' for axis 'sdn-frac': sdn fraction must "
            "be in [0, 1], got 1.5");
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("axis event quux\n"); }),
            "line 1: bad value 'quux' for axis 'event': unknown event kind "
            "'quux'");
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("axis mrai fast\n"); }),
            "line 1: bad value 'fast' for axis 'mrai': mrai needs a number, "
            "got 'fast'");
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("axis spt maybe\n"); }),
            "line 1: bad value 'maybe' for axis 'spt': want "
            "incremental|reference, got 'maybe'");
}

TEST(Matrix, AxisDeclarationErrors) {
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("axis damping\n"); }),
            "line 1: axis 'damping' has no values");
  EXPECT_EQ(diagnostic_of([] {
              MatrixSpec::parse("axis damping on\naxis damping off\n");
            }),
            "line 2: axis 'damping' declared twice");
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("axis damping on on\n"); }),
            "line 1: duplicate value 'on' in axis 'damping'");
}

TEST(Matrix, DirectiveArgumentErrors) {
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("trials 0\n"); }),
            "line 1: trials must be >= 1");
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("trials\n"); }),
            "line 1: trials expects 1 argument(s)");
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("topology clique\n"); }),
            "line 1: topology expects 2 argument(s)");
  EXPECT_EQ(diagnostic_of([] { MatrixSpec::parse("announce 1 10.x\n"); }),
            "line 1: bad prefix '10.x'");
}

// --- expansion --------------------------------------------------------------

TEST(Matrix, ExpandsRowMajorWithFirstAxisSlowest) {
  const auto matrix = MatrixSpec::parse(kSmokeMatrix);
  const auto cells = matrix.expand();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].label, "sdn-frac=0,event=withdrawal");
  EXPECT_EQ(cells[1].label, "sdn-frac=0,event=announcement");
  EXPECT_EQ(cells[2].label, "sdn-frac=0.6,event=withdrawal");
  EXPECT_EQ(cells[3].label, "sdn-frac=0.6,event=announcement");
  // Cells come back resolved: 0.6 of a 5-clique rounds to 3 members, and
  // every cell carries the matrix's trials/base-seed.
  EXPECT_EQ(cells[2].spec.sdn_count, 3u);
  EXPECT_FALSE(cells[2].spec.sdn_fraction.has_value());
  EXPECT_EQ(cells[0].spec.trials, 3u);
  EXPECT_EQ(cells[0].spec.base_seed, 4000u);
  ASSERT_NE(cells[3].coord("event"), nullptr);
  EXPECT_EQ(*cells[3].coord("event"), "announcement");
  EXPECT_EQ(cells[3].coord("spt"), nullptr);
}

TEST(Matrix, EmptyProductIsRejected) {
  EXPECT_EQ(diagnostic_of([] {
              MatrixSpec::parse("topology clique 4\n").expand();
            }),
            "matrix declares no axes; add at least one 'axis' line");
}

TEST(Matrix, SemanticallyDuplicateCellsAreRejected) {
  // '0' and '0.0' are distinct axis strings but resolve to the same spec.
  const auto matrix =
      MatrixSpec::parse("topology clique 4\naxis sdn-frac 0 0.0\n");
  EXPECT_EQ(diagnostic_of([&] { matrix.expand(); }),
            "duplicate cells: 'sdn-frac=0' and 'sdn-frac=0.0' configure "
            "identical experiments");
}

TEST(Matrix, CellValidationFailureCarriesTheCellLabel) {
  // failover needs the stub AS numbers above the topology, so a 200-AS
  // clique cannot host it; the error must name the offending cell.
  const auto matrix =
      MatrixSpec::parse("topology clique 200\naxis event failover\n");
  const auto message = diagnostic_of([&] { matrix.expand(); });
  EXPECT_EQ(message.rfind("cell 'event=failover': ", 0), 0u) << message;
}

// --- filtering --------------------------------------------------------------

TEST(Matrix, FilterKeepsMatchingCellsOnly) {
  const auto matrix = MatrixSpec::parse(kSmokeMatrix);
  const auto cells =
      matrix.filter(matrix.expand(), "event", "withdrawal");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].label, "sdn-frac=0,event=withdrawal");
  EXPECT_EQ(cells[1].label, "sdn-frac=0.6,event=withdrawal");
}

TEST(Matrix, FilterDiagnostics) {
  const auto matrix = MatrixSpec::parse(kSmokeMatrix);
  EXPECT_EQ(diagnostic_of([&] {
              matrix.filter(matrix.expand(), "colour", "red");
            }),
            "unknown filter axis 'colour' (declared axes: sdn-frac, event)");
  EXPECT_EQ(diagnostic_of([&] {
              matrix.filter(matrix.expand(), "sdn-frac", "0.9");
            }),
            "filter value '0.9' not in axis 'sdn-frac' (values: 0, 0.6)");
  // Composing contradictory filters drains the set.
  EXPECT_EQ(diagnostic_of([&] {
              matrix.filter(
                  matrix.filter(matrix.expand(), "event", "withdrawal"),
                  "event", "announcement");
            }),
            "filter event=announcement matches no cells");
}

// --- ExperimentSpec builder and helpers -------------------------------------

TEST(ExperimentSpecTest, BuilderValidatesEagerlyAndOnBuild) {
  EXPECT_THROW(ExperimentSpecBuilder{}.sdn_fraction(1.5),
               std::invalid_argument);
  EXPECT_THROW(ExperimentSpecBuilder{}.flap_cycles(0), std::invalid_argument);
  EXPECT_THROW(ExperimentSpecBuilder{}.topology(TopologyModel::kClique, 1),
               std::invalid_argument);
  // Cross-field: a flap train needs at least two members to own the link.
  EXPECT_THROW(ExperimentSpecBuilder{}
                   .topology(TopologyModel::kClique, 5)
                   .event(EventKind::kFlapTrain)
                   .build(),
               std::invalid_argument);
  const auto spec = ExperimentSpecBuilder{}
                        .topology(TopologyModel::kClique, 16)
                        .sdn_fraction(0.5)
                        .event(EventKind::kWithdrawal)
                        .build();
  EXPECT_EQ(spec.sdn_count, 8u);
  EXPECT_FALSE(spec.sdn_fraction.has_value());
}

TEST(ExperimentSpecTest, SignatureSeparatesBehaviorRelevantFields) {
  const auto base = ExperimentSpecBuilder{}
                        .topology(TopologyModel::kClique, 8)
                        .event(EventKind::kWithdrawal)
                        .build();
  auto other = base;
  EXPECT_EQ(base.signature(), other.signature());
  other.sdn_count = 4;
  EXPECT_NE(base.signature(), other.signature());
  auto engine = base;
  engine.config.incremental_spt = false;
  EXPECT_NE(base.signature(), engine.signature());
}

TEST(ExperimentSpecTest, EventKindNamesRoundTrip) {
  EXPECT_STREQ(to_string(EventKind::kFlapTrain), "flap-train");
  EXPECT_EQ(parse_event_kind("withdraw"), EventKind::kWithdrawal);
  EXPECT_EQ(parse_event_kind("announce"), EventKind::kAnnouncement);
  EXPECT_EQ(parse_event_kind("flap"), EventKind::kFlapTrain);
  EXPECT_EQ(parse_event_kind("quux"), std::nullopt);
  EXPECT_EQ(parse_topology_model("synth-caida"), TopologyModel::kSynthCaida);
}

TEST(ExperimentSpecTest, RunTrialExecutesOneCellEndToEnd) {
  // A miniature Fig.2 cell with smoke timers: must converge, deliver
  // counters, and be deterministic per seed.
  const auto cell = ExperimentSpecBuilder{}
                        .topology(TopologyModel::kClique, 4)
                        .sdn_count(2)
                        .event(EventKind::kWithdrawal)
                        .mrai(core::Duration::seconds_f(0.3))
                        .recompute_delay(core::Duration::seconds_f(0.1))
                        .build();
  std::map<std::string, std::int64_t> counters;
  const double first = cell.run_trial(42, &counters);
  EXPECT_GT(first, 0.0);
  EXPECT_FALSE(counters.empty());
  EXPECT_EQ(cell.run_trial(42), first);
}

}  // namespace
}  // namespace bgpsdn::framework
