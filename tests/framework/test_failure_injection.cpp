// Failure injection: lossy control channels, repeated link flapping,
// simultaneous failures, and larger-scale topologies — the emulation must
// stay consistent under abuse, not just on the happy path.
#include <gtest/gtest.h>

#include "framework/experiment.hpp"
#include "topology/generators.hpp"

namespace bgpsdn {
namespace {

framework::ExperimentConfig fast_config(std::uint64_t seed = 17) {
  framework::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(300);
  cfg.timers.hold = core::Duration::seconds(6);
  cfg.timers.keepalive = core::Duration::seconds(2);
  cfg.recompute_delay = core::Duration::millis(100);
  return cfg;
}

TEST(FailureInjection, SessionsSurviveMildLoss) {
  // 2% loss on every link: occasional lost KEEPALIVEs and UPDATEs must not
  // wreck convergence (hold timers ride through; sessions that do drop
  // auto-restart).
  auto cfg = fast_config();
  cfg.default_link.loss = 0.02;
  const auto spec = topology::clique(5);
  framework::Experiment exp{spec, {}, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start(core::Duration::seconds(600)));
  exp.run_for(core::Duration::seconds(30));
  exp.wait_converged(framework::WaitOpts{core::Duration::seconds(2),
                                         core::Duration::seconds(600)});
  EXPECT_TRUE(exp.all_know_prefix(pfx));
}

TEST(FailureInjection, SessionFlapsUnderHeavyLossThenHeals) {
  auto cfg = fast_config();
  const auto spec = topology::line(2);
  framework::Experiment exp{spec, {}, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());
  ASSERT_NE(exp.router(core::AsNumber{2}).loc_rib().find(pfx), nullptr);

  // 70% loss starves the hold timer within a few periods.
  const auto link = exp.network().find_link(exp.router(core::AsNumber{1}).id(),
                                            exp.router(core::AsNumber{2}).id());
  exp.network().set_link_loss(link, 0.7);
  exp.run_for(core::Duration::seconds(120));
  const auto flaps = exp.router(core::AsNumber{2}).sessions()[0]->counters().flaps;
  EXPECT_GT(flaps, 0u);

  // Heal: the session re-establishes and the route returns.
  exp.network().set_link_loss(link, 0.0);
  exp.run_for(core::Duration::seconds(60));
  EXPECT_TRUE(exp.router(core::AsNumber{2}).sessions()[0]->established());
  EXPECT_NE(exp.router(core::AsNumber{2}).loc_rib().find(pfx), nullptr);
}

TEST(FailureInjection, RepeatedLinkFlappingEndsConsistent) {
  auto cfg = fast_config();
  const auto spec = topology::clique(5);
  const core::AsNumber as1{1};
  framework::Experiment exp{spec, {core::AsNumber{5}}, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(as1, pfx);
  ASSERT_TRUE(exp.start());

  for (int i = 0; i < 5; ++i) {
    exp.fail_link(as1, core::AsNumber{2});
    exp.run_for(core::Duration::seconds(1));
    exp.restore_link(as1, core::AsNumber{2});
    exp.run_for(core::Duration::seconds(1));
  }
  const auto conv = exp.wait_converged(framework::WaitOpts{
      core::Duration::zero(), core::Duration::seconds(600)});
  ASSERT_FALSE(conv.timed_out);
  EXPECT_TRUE(exp.all_know_prefix(pfx));
  // The flapped neighbor ends on the direct path again.
  EXPECT_EQ(exp.router(core::AsNumber{2}).loc_rib().find(pfx)
                ->attributes->as_path.to_string(),
            "1");
}

TEST(FailureInjection, SimultaneousFailuresRerouteEverything) {
  auto cfg = fast_config();
  const auto spec = topology::clique(6);
  const core::AsNumber as1{1};
  framework::Experiment exp{spec, {core::AsNumber{5}, core::AsNumber{6}}, cfg};
  auto& host = exp.add_host(as1);
  ASSERT_TRUE(exp.start());

  // Cut half of the origin's links at the same instant.
  exp.fail_link(as1, core::AsNumber{2});
  exp.fail_link(as1, core::AsNumber{5});
  const auto conv = exp.wait_converged(framework::WaitOpts{
      core::Duration::zero(), core::Duration::seconds(600)});
  ASSERT_FALSE(conv.timed_out);
  for (const auto as : spec.ases) {
    if (as == as1) continue;
    EXPECT_FALSE(exp.trace_route(as, host.address()).empty()) << as.to_string();
  }
}

TEST(FailureInjection, ControllerLinkLossStillConverges) {
  // Loss on every link includes the control channels: FlowMods and
  // PacketIns can vanish. Reactive repair plus recompute-driven reinstalls
  // must still produce a working network.
  auto cfg = fast_config(23);
  cfg.default_link.loss = 0.05;
  const auto spec = topology::clique(4);
  framework::Experiment exp{spec, {core::AsNumber{3}, core::AsNumber{4}}, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start(core::Duration::seconds(600)));
  exp.wait_converged(framework::WaitOpts{core::Duration::seconds(2),
                                         core::Duration::seconds(600)});
  const auto* d = exp.idr_controller()->decision_for(pfx);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->reachable(exp.member_switch(core::AsNumber{3}).dpid()));
}

TEST(FailureInjection, InternetScaleTopologyConverges) {
  // ~60 ASes with Gao-Rexford policies and an 8-member cluster: a smoke
  // test that the whole stack scales beyond toy sizes in reasonable time.
  core::Rng topo_rng{31};
  topology::InternetLikeParams params;
  params.tier1 = 4;
  params.transit = 12;
  params.stubs = 44;
  const auto spec = topology::internet_like(params, topo_rng);

  auto cfg = fast_config(31);
  std::set<core::AsNumber> members;
  // Centralize 8 transit ASes (indices after the tier-1 block).
  for (std::uint32_t i = 0; i < 8; ++i) {
    members.insert(core::AsNumber{static_cast<std::uint32_t>(5 + i)});
  }
  framework::Experiment exp{spec, members, cfg};
  const auto origin = spec.ases.back();
  auto& host = exp.add_host(origin);
  ASSERT_TRUE(exp.start(core::Duration::seconds(600)));

  // Every AS with a (policy-visible) route can actually deliver packets.
  std::size_t reachable = 0;
  for (const auto as : spec.ases) {
    if (as == origin) continue;
    if (!exp.trace_route(as, host.address()).empty()) ++reachable;
  }
  // Valley-free policies can hide a stub from some peers, but the vast
  // majority must reach it.
  EXPECT_GT(reachable, spec.ases.size() * 3 / 4);
}

}  // namespace
}  // namespace bgpsdn
