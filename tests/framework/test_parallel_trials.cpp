// Reentrancy + parallel-trial regression tests: simulations must be fully
// deterministic given a seed, regardless of how many ran before them in the
// same process or which thread they run on, and the parallel trial runners
// must produce byte-identical summaries at any jobs count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "framework/experiment.hpp"
#include "framework/stats.hpp"
#include "framework/trial.hpp"
#include "topology/generators.hpp"

namespace bgpsdn {
namespace {

using framework::Experiment;
using framework::ExperimentConfig;

/// Everything observable about one seeded hybrid run: the convergence time,
/// the full structured-log event stream, and how many session ids the
/// network handed out.
struct TrialTrace {
  double seconds{0};
  std::vector<std::string> log_lines;
  std::uint32_t session_ids{0};
};

TrialTrace traced_trial(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(500);
  cfg.recompute_delay = core::Duration::millis(200);
  cfg.retain_logs = true;
  const auto spec = topology::clique(4);
  Experiment exp{spec, {core::AsNumber{3}, core::AsNumber{4}}, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  EXPECT_TRUE(exp.start());
  const auto t0 = exp.loop().now();
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  const auto conv = exp.wait_converged();

  TrialTrace trace;
  trace.seconds = conv.since(t0).to_seconds();
  for (const auto& rec : exp.logger().records()) {
    trace.log_lines.push_back(rec.to_string());
  }
  trace.session_ids = exp.network().session_ids().allocated();
  return trace;
}

/// A cheap pure-BGP convergence trial for exercising the runners.
double quick_trial(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(500);
  Experiment exp{topology::clique(4), {}, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  EXPECT_TRUE(exp.start());
  const auto t0 = exp.loop().now();
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  return exp.wait_converged().since(t0).to_seconds();
}

// The determinism regression at the heart of the reentrancy refactor: a
// second Experiment in the same process must replay the first one exactly —
// same convergence time, same session ids, same log stream. Before session
// ids moved off a process-wide static counter, the second run's ids (and
// every log line naming them) differed.
TEST(Determinism, RepeatedSeededExperimentsAreIdentical) {
  const TrialTrace first = traced_trial(7);
  const TrialTrace second = traced_trial(7);
  ASSERT_FALSE(first.log_lines.empty());
  EXPECT_GT(first.session_ids, 0u);
  EXPECT_EQ(first.seconds, second.seconds);
  EXPECT_EQ(first.session_ids, second.session_ids);
  EXPECT_EQ(first.log_lines, second.log_lines);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check that the comparison above is not vacuous.
  const TrialTrace a = traced_trial(7);
  const TrialTrace b = traced_trial(8);
  EXPECT_NE(a.log_lines, b.log_lines);
}

TEST(Determinism, WorkerThreadMatchesMainThread) {
  const TrialTrace on_main = traced_trial(11);
  TrialTrace on_worker;
  std::thread worker{[&] { on_worker = traced_trial(11); }};
  worker.join();
  EXPECT_EQ(on_main.seconds, on_worker.seconds);
  EXPECT_EQ(on_main.session_ids, on_worker.session_ids);
  EXPECT_EQ(on_main.log_lines, on_worker.log_lines);
}

TEST(TrialRunnerParallel, SummaryIsByteIdenticalAcrossJobs) {
  const framework::TrialRunner serial{6, 500, 1};
  const framework::TrialRunner pooled{6, 500, 4};
  EXPECT_EQ(serial.jobs(), 1u);
  EXPECT_EQ(pooled.jobs(), 4u);
  const auto serial_values = serial.run_values(quick_trial);
  const auto pooled_values = pooled.run_values(quick_trial);
  EXPECT_EQ(serial_values, pooled_values);
  const auto serial_row =
      framework::boxplot_row("conv_s", framework::summarize(serial_values));
  const auto pooled_row =
      framework::boxplot_row("conv_s", framework::summarize(pooled_values));
  EXPECT_EQ(serial_row, pooled_row);
}

TEST(ParamSweepRunnerParallel, SweepIsDeterministicAcrossJobs) {
  const auto trial = [](std::size_t point, std::uint64_t seed) {
    // Deterministic stand-in keyed on both coordinates.
    return static_cast<double>(point * 1000 + seed % 97);
  };
  const framework::ParamSweepRunner serial{4, 500, 1};
  const framework::ParamSweepRunner pooled{4, 500, 3};
  const auto a = serial.run(3, trial);
  const auto b = pooled.run(3, trial);
  ASSERT_EQ(a.points.size(), 3u);
  ASSERT_EQ(b.points.size(), 3u);
  EXPECT_EQ(a.trials, 12u);
  EXPECT_EQ(b.trials, 12u);
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    EXPECT_EQ(a.points[p].summary.median, b.points[p].summary.median) << p;
    EXPECT_EQ(a.points[p].summary.min, b.points[p].summary.min) << p;
    EXPECT_EQ(a.points[p].summary.max, b.points[p].summary.max) << p;
  }
}

TEST(ParallelForIndex, VisitsEveryIndexExactlyOnce) {
  std::vector<int> visits(100, 0);
  framework::parallel_for_index(visits.size(), 4,
                                [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < visits.size(); ++i) EXPECT_EQ(visits[i], 1) << i;
}

TEST(ParallelForIndex, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      framework::parallel_for_index(
          8, 4,
          [](std::size_t i) {
            if (i == 3) throw std::runtime_error{"boom"};
          }),
      std::runtime_error);
}

TEST(DefaultJobs, HonorsEnvVar) {
  const char* prior = std::getenv("BGPSDN_JOBS");
  const std::string saved = prior != nullptr ? prior : "";
  ::setenv("BGPSDN_JOBS", "3", 1);
  EXPECT_EQ(framework::default_jobs(), 3u);
  ::setenv("BGPSDN_JOBS", "not-a-number", 1);
  EXPECT_GE(framework::default_jobs(), 1u);  // falls back to the machine
  ::unsetenv("BGPSDN_JOBS");
  EXPECT_GE(framework::default_jobs(), 1u);
  if (prior != nullptr) ::setenv("BGPSDN_JOBS", saved.c_str(), 1);
}

}  // namespace
}  // namespace bgpsdn
