// Fault-injection engine and crash-recovery acceptance tests: plan parsing,
// arm-time validation, deterministic expansion, controller/speaker crash +
// restart semantics (graceful degradation to distributed BGP), corruption
// windows, partitions, and byte-identical chaos trials across job counts.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "framework/experiment.hpp"
#include "framework/faults.hpp"
#include "framework/scenario.hpp"
#include "framework/trial.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::framework {
namespace {

ExperimentConfig fast_config(std::uint64_t seed = 17) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(300);
  cfg.timers.hold = core::Duration::seconds(6);
  cfg.timers.keepalive = core::Duration::seconds(2);
  cfg.recompute_delay = core::Duration::millis(100);
  return cfg;
}

const net::Prefix kPfx = *net::Prefix::parse("10.0.0.0/16");
const net::Prefix kPfx2 = *net::Prefix::parse("10.50.0.0/16");

/// Every legacy Loc-RIB rendered to one comparable string. Lines are
/// sorted so the comparison survives histories that legitimately diverge
/// between runs even when the routes themselves match.
std::string rib_snapshot(Experiment& exp) {
  std::vector<std::string> lines;
  for (const auto as : exp.spec().ases) {
    if (exp.is_member(as)) continue;
    exp.router(as).loc_rib().for_each([&](const bgp::Route& route) {
      lines.push_back(as.to_string() + " " + route.prefix.to_string() + " [" +
                      route.attributes->as_path.to_string() + "]");
    });
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) out += line + "\n";
  return out;
}

/// Every member flow table rendered to one comparable string, sorted so the
/// comparison survives insertion-order differences between runs whose
/// histories legitimately diverge (crash cycles flush and reinstall).
std::string flow_snapshot(Experiment& exp) {
  std::vector<std::string> lines;
  for (const auto as : exp.spec().ases) {
    if (!exp.is_member(as)) continue;
    for (const auto& e : exp.member_switch(as).table().entries()) {
      lines.push_back(as.to_string() + " " + e.to_string());
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) out += line + "\n";
  return out;
}

TEST(FaultPlanParse, FullGrammar) {
  const auto plan = FaultPlan::parse(
      "# chaos plan\n"
      "seed 42\n"
      "at 1.5 link-down 1 10\n"
      "at 2 link-up 1 10\n"
      "at 3 flap 1 10 5 0.4\n"
      "at 4 loss 1 10 0.2   # trailing comment\n"
      "at 5 loss-ramp 1 10 0.5 5 1\n"
      "at 6 corrupt 1 10 0.3 2\n"
      "\n"
      "at 8 partition 7 8 9 10\n"
      "at 12 heal\n"
      "at 15 controller-crash\n"
      "at 20 controller-restart\n"
      "at 25 speaker-crash\n"
      "at 30 speaker-restart\n");
  ASSERT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.events.size(), 12u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.events[0].at, core::Duration::seconds_f(1.5));
  EXPECT_EQ(plan.events[0].a, core::AsNumber{1});
  EXPECT_EQ(plan.events[0].b, core::AsNumber{10});
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(plan.events[2].count, 5);
  EXPECT_EQ(plan.events[2].period, core::Duration::seconds_f(0.4));
  EXPECT_DOUBLE_EQ(plan.events[3].value, 0.2);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kLossRamp);
  EXPECT_EQ(plan.events[4].count, 5);
  EXPECT_EQ(plan.events[5].kind, FaultKind::kCorrupt);
  ASSERT_EQ(plan.events[6].as_set.size(), 4u);
  EXPECT_EQ(plan.events[6].as_set[0], core::AsNumber{7});
  EXPECT_EQ(plan.events[7].kind, FaultKind::kPartitionHeal);
  EXPECT_EQ(plan.events[8].kind, FaultKind::kControllerCrash);
  EXPECT_EQ(plan.events[11].kind, FaultKind::kSpeakerRestart);
}

TEST(FaultPlanParse, ControllerReplicaAndReplicationGrammar) {
  const auto plan = FaultPlan::parse(
      "at 1 controller-crash 2\n"
      "at 2 controller-restart 2\n"
      "at 3 controller-crash\n"
      "at 4 repl-partition 1\n"
      "at 5 repl-heal 1\n");
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kControllerCrash);
  EXPECT_EQ(plan.events[0].count, 2);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kControllerRestart);
  EXPECT_EQ(plan.events[1].count, 2);
  // No id = the whole controller (every replica), the pre-HA meaning.
  EXPECT_EQ(plan.events[2].count, -1);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kReplPartition);
  EXPECT_EQ(plan.events[3].count, 1);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kReplHeal);
  EXPECT_EQ(plan.events[4].count, 1);

  const auto expect_parse_error = [](const char* text, const char* needle) {
    try {
      FaultPlan::parse(text);
      FAIL() << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  expect_parse_error("at 1 controller-crash x",
                     "controller replica id 'x' must be a non-negative integer");
  expect_parse_error("at 1 controller-crash -1",
                     "must be a non-negative integer");
  expect_parse_error("at 1 controller-crash 1 2",
                     "'controller-crash' takes at most one replica id, got 2");
  expect_parse_error("at 1 repl-partition", "repl-partition");
  expect_parse_error("at 1 repl-heal 1 2", "repl-heal");
}

TEST(FaultInjector, ValidatesReplicaIdsAtArmTime) {
  // Single-controller cluster: replica ids beyond 0 and replication faults
  // have nothing to act on.
  Experiment exp{topology::clique(4), {core::AsNumber{4}}, fast_config()};
  const auto expect_arm_error = [&exp](const char* text, const char* needle) {
    try {
      exp.attach_monitor<FaultInjector>(FaultPlan::parse(text));
      FAIL() << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  expect_arm_error("at 1 controller-crash 2",
                   "controller replica id 2 out of range (controller_replicas=1)");
  expect_arm_error("at 1 repl-partition 0",
                   "replication faults require controller_replicas >= 2");

  auto cfg = fast_config();
  cfg.controller_replicas = 2;
  Experiment ha{topology::clique(4), {core::AsNumber{4}}, cfg};
  EXPECT_THROW(ha.attach_monitor<FaultInjector>(
                   FaultPlan::parse("at 1 repl-partition 5")),
               std::invalid_argument);
  // In range: id 0 and 1 both arm fine.
  ha.attach_monitor<FaultInjector>(
      FaultPlan::parse("at 1 controller-crash 0\nat 3 controller-restart 0\n"
                       "at 5 repl-partition 1\nat 6 repl-heal 1"));
}

TEST(FaultInjector, ReplicaFaultPlanDrivesFailover) {
  auto cfg = fast_config(19);
  cfg.controller_replicas = 2;
  Experiment exp{topology::clique(5),
                 {core::AsNumber{4}, core::AsNumber{5}}, cfg};
  exp.announce_prefix(core::AsNumber{1}, kPfx);
  ASSERT_TRUE(exp.start());
  exp.attach_monitor<FaultInjector>(FaultPlan::parse(
      "at 0.5 controller-crash 0\n"
      "at 4 controller-restart 0\n"));
  exp.run_for(core::Duration::seconds(8));
  exp.wait_converged();
  auto* rs = exp.replica_set();
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->counters().replica_crashes, 1u);
  EXPECT_EQ(rs->counters().replica_restarts, 1u);
  EXPECT_GE(rs->counters().takeovers, 1u);
  EXPECT_FALSE(rs->degraded());
  EXPECT_TRUE(exp.all_know_prefix(kPfx));
}

TEST(FaultPlanParse, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::parse("at 1 melt-down 1 2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 1 link-down 1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 1 link-down 1 2 3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at x link-down 1 2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at -1 link-down 1 2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 1 flap 1 2 0 0.4"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 1 loss 1 2 oops"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 1 partition"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 1 heal now"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("launch 1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 1 link-down 0 2"), std::invalid_argument);
  // Errors carry the offending line number.
  try {
    FaultPlan::parse("seed 1\nat 1 nonsense");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(FaultInjector, ValidatesAtArmTime) {
  Experiment exp{topology::clique(4), {core::AsNumber{4}}, fast_config()};
  const auto arm = [&](const char* text) {
    exp.attach_monitor<FaultInjector>(FaultPlan::parse(text));
  };
  EXPECT_THROW(arm("at 1 link-down 1 9"), std::invalid_argument);
  EXPECT_THROW(arm("at 1 loss 1 2 1.5"), std::invalid_argument);
  EXPECT_THROW(arm("at 1 partition 9"), std::invalid_argument);

  // Controller faults require an IDR-controlled cluster.
  Experiment legacy{topology::clique(4), {}, fast_config()};
  EXPECT_THROW(
      legacy.attach_monitor<FaultInjector>(
          FaultPlan::parse("at 1 controller-crash")),
      std::invalid_argument);
  EXPECT_THROW(
      legacy.attach_monitor<FaultInjector>(
          FaultPlan::parse("at 1 speaker-crash")),
      std::invalid_argument);
}

TEST(FaultInjector, ExpansionIsDeterministicPerPlanSeed) {
  const char* text =
      "seed 5\n"
      "at 1 flap 1 2 3 0.4\n"
      "at 4 loss-ramp 1 2 0.6 4 0.5\n"
      "at 7 corrupt 1 2 0.3 1\n";
  Experiment exp{topology::clique(4), {}, fast_config()};
  auto& inj = exp.attach_monitor<FaultInjector>(FaultPlan::parse(text));
  // 3 flap cycles = 6 actions, 4 ramp steps, corrupt set + clear.
  EXPECT_EQ(inj.planned(), 12u);
  EXPECT_EQ(inj.fired(), 0u);
  exp.run_for(core::Duration::seconds(10));
  EXPECT_EQ(inj.fired(), 12u);
  EXPECT_EQ(exp.telemetry().metrics().counter("faults.injected").value(), 12);
  EXPECT_GT(exp.telemetry().metrics().counter("faults.link_down").value(), 0);

  const auto snap = inj.snapshot();
  EXPECT_EQ(snap.find("planned")->as_int(), 12);
  EXPECT_EQ(snap.find("fired")->as_int(), 12);
  ASSERT_NE(snap.find("by_kind"), nullptr);
  ASSERT_EQ(snap.find("events")->size(), 3u);
}

TEST(CrashRecovery, ControllerCrashDegradesToDistributedBgp) {
  // The acceptance scenario. A never-crashed control run first:
  const auto run_control = [] {
    Experiment exp{topology::clique(8),
                   {core::AsNumber{5}, core::AsNumber{6}, core::AsNumber{7},
                    core::AsNumber{8}},
                   fast_config(17)};
    exp.announce_prefix(core::AsNumber{1}, kPfx);
    EXPECT_TRUE(exp.start());
    exp.announce_prefix(core::AsNumber{1}, kPfx2);
    exp.wait_converged();
    return rib_snapshot(exp);
  };
  const std::string control = run_control();
  ASSERT_FALSE(control.empty());

  Experiment exp{topology::clique(8),
                 {core::AsNumber{5}, core::AsNumber{6}, core::AsNumber{7},
                  core::AsNumber{8}},
                 fast_config(17)};
  exp.announce_prefix(core::AsNumber{1}, kPfx);
  ASSERT_TRUE(exp.start());

  // Crash mid-convergence: the second announcement's wave is still running
  // (MRAI 300 ms) when the controller dies.
  exp.announce_prefix(core::AsNumber{1}, kPfx2);
  exp.run_for(core::Duration::millis(150));
  exp.crash_controller();
  EXPECT_TRUE(exp.controller_crashed());
  ASSERT_NE(exp.fallback(), nullptr);
  EXPECT_TRUE(exp.fallback()->active());
  // Switches observed the control-link loss and went standalone.
  EXPECT_TRUE(exp.member_switch(core::AsNumber{5}).standalone());

  // Degraded mode: the cluster reconverges via distributed BGP — every
  // legacy Loc-RIB and every member flow table knows both prefixes.
  exp.wait_converged();
  EXPECT_TRUE(exp.all_know_prefix(kPfx));
  EXPECT_TRUE(exp.all_know_prefix(kPfx2));
  EXPECT_GT(exp.fallback()->counters().flow_adds, 0u);

  // Restart: fallback stands down, the controller resyncs from the
  // speaker's Adj-RIBs-In, and the Loc-RIBs match the never-crashed run.
  exp.restart_controller();
  EXPECT_FALSE(exp.controller_crashed());
  EXPECT_FALSE(exp.fallback()->active());
  exp.wait_converged();
  EXPECT_FALSE(exp.member_switch(core::AsNumber{5}).standalone());
  EXPECT_TRUE(exp.all_know_prefix(kPfx));
  EXPECT_TRUE(exp.all_know_prefix(kPfx2));
  EXPECT_EQ(rib_snapshot(exp), control);
}

TEST(CrashRecovery, ThreeCrashRestartCyclesResyncByteForByte) {
  // Regression: repeated crash/restart cycles must leave zero residue. The
  // second cycle flaps a cluster link *while degraded*, so the restarted
  // controller's view of switch port state depends on the switches re-
  // announcing their ports on resync — exactly the path that used to rot.
  const auto make = [](std::uint64_t seed) {
    auto exp = std::make_unique<Experiment>(
        topology::clique(6),
        std::set<core::AsNumber>{core::AsNumber{4}, core::AsNumber{5},
                                 core::AsNumber{6}},
        fast_config(seed));
    exp->announce_prefix(core::AsNumber{1}, kPfx);
    exp->announce_prefix(core::AsNumber{2}, kPfx2);
    return exp;
  };

  auto control = make(29);
  ASSERT_TRUE(control->start());
  control->wait_converged();
  const std::string control_ribs = rib_snapshot(*control);
  const std::string control_flows = flow_snapshot(*control);
  ASSERT_FALSE(control_ribs.empty());
  ASSERT_NE(control_flows.find("dst="), std::string::npos);

  auto exp = make(29);
  ASSERT_TRUE(exp->start());
  exp->wait_converged();
  for (int round = 0; round < 3; ++round) {
    exp->crash_controller();
    exp->wait_converged();
    if (round == 1) {
      // Topology churn the dead controller cannot see; restored before the
      // restart so the final topology matches the never-crashed control.
      exp->fail_link(core::AsNumber{4}, core::AsNumber{5});
      exp->wait_converged();
      exp->restore_link(core::AsNumber{4}, core::AsNumber{5});
      exp->wait_converged();
    }
    exp->restart_controller();
    exp->wait_converged();
    EXPECT_FALSE(exp->fallback()->active()) << "round " << round;
  }
  EXPECT_EQ(rib_snapshot(*exp), control_ribs);
  EXPECT_EQ(flow_snapshot(*exp), control_flows);
}

TEST(CrashRecovery, ControllerCrashRequiresIdrStyle) {
  auto cfg = fast_config();
  cfg.controller_style = ControllerStyle::kRouteFlowMirror;
  Experiment exp{topology::clique(4), {core::AsNumber{4}}, cfg};
  EXPECT_THROW(exp.crash_controller(), std::logic_error);
  Experiment legacy{topology::clique(4), {}, fast_config()};
  EXPECT_THROW(legacy.crash_controller(), std::logic_error);
  EXPECT_THROW(legacy.crash_speaker(), std::logic_error);
}

TEST(CrashRecovery, SpeakerCrashDropsSessionsSilentlyAndRecovers) {
  Experiment exp{topology::clique(5),
                 {core::AsNumber{4}, core::AsNumber{5}}, fast_config(23)};
  exp.announce_prefix(core::AsNumber{1}, kPfx);
  ASSERT_TRUE(exp.start());
  ASSERT_TRUE(exp.all_know_prefix(kPfx));

  exp.crash_speaker();
  EXPECT_TRUE(exp.speaker_crashed());
  // Silent death: peers only notice once their hold timers (6 s) expire.
  exp.run_for(core::Duration::seconds(8));
  bool any_established = false;
  for (const auto* p : exp.cluster_speaker()->peerings()) {
    any_established =
        any_established || exp.cluster_speaker()->peering_established(p->id);
  }
  EXPECT_FALSE(any_established);

  exp.restart_speaker();
  EXPECT_FALSE(exp.speaker_crashed());
  exp.run_for(core::Duration::seconds(10));
  exp.wait_converged();
  // Peers re-sent their tables; cluster state is whole again.
  EXPECT_TRUE(exp.all_know_prefix(kPfx));
}

TEST(FaultInjector, CorruptionWindowNotifiesAndRecovers) {
  // Wire corruption across a session's link: decode failures must answer
  // with NOTIFICATION + auto-restart (never a crash), and the session heals
  // once the window closes.
  Experiment exp{topology::clique(4), {}, fast_config(31)};
  exp.announce_prefix(core::AsNumber{1}, kPfx);
  ASSERT_TRUE(exp.start());
  exp.attach_monitor<FaultInjector>(
      FaultPlan::parse("at 0 corrupt 1 2 0.8 4"));
  // Route churn keeps UPDATEs flowing through the corrupted link.
  for (int i = 0; i < 4; ++i) {
    exp.announce_prefix(core::AsNumber{2}, kPfx2);
    exp.run_for(core::Duration::seconds(1));
    exp.withdraw_prefix(core::AsNumber{2}, kPfx2);
    exp.run_for(core::Duration::seconds(1));
  }
  EXPECT_GT(exp.network().stats().corrupted, 0u);
  std::uint64_t decode_errors = 0;
  for (const auto as : exp.spec().ases) {
    for (const auto* s : exp.router(as).sessions()) {
      decode_errors += s->counters().decode_errors;
    }
  }
  EXPECT_GT(decode_errors, 0u);

  exp.wait_converged();
  EXPECT_TRUE(exp.all_know_prefix(kPfx));
  // Every session re-established after the window.
  for (const auto as : exp.spec().ases) {
    for (const auto* s : exp.router(as).sessions()) {
      EXPECT_TRUE(s->established()) << as.to_string();
    }
  }
}

TEST(FaultInjector, PartitionIsolatesAndHealRestores) {
  Experiment exp{topology::clique(6), {}, fast_config(41)};
  exp.announce_prefix(core::AsNumber{1}, kPfx);
  ASSERT_TRUE(exp.start());
  exp.attach_monitor<FaultInjector>(
      FaultPlan::parse("at 0 partition 5 6\nat 10 heal"));
  exp.run_for(core::Duration::seconds(5));
  // The cut-off island lost the prefix (origin is outside) but keeps its
  // internal link 5<->6.
  EXPECT_EQ(exp.router(core::AsNumber{5}).loc_rib().find(kPfx), nullptr);
  EXPECT_NE(exp.router(core::AsNumber{1}).loc_rib().find(kPfx), nullptr);
  EXPECT_TRUE(exp.network().link_is_up(exp.link_between(
      core::AsNumber{5}, core::AsNumber{6})));

  exp.run_for(core::Duration::seconds(6));  // heal fires at t=10
  exp.wait_converged();
  EXPECT_TRUE(exp.all_know_prefix(kPfx));
}

TEST(FaultDsl, ScenarioCommandsDriveFaults) {
  ScenarioRunner runner;
  const auto result = runner.run(
      "seed 7\n"
      "mrai 0.3\n"
      "recompute-delay 0.1\n"
      "topology clique 6\n"
      "sdn 5 6\n"
      "announce 1 10.0.0.0/16\n"
      "fault-seed 3\n"
      "fault 0.5 flap 1 2 2 0.4\n"
      "start\n"
      "run 4\n"
      "crash controller\n"
      "run 2\n"
      "expect-route 2 10.0.0.0/16\n"
      "restart controller\n"
      "wait-converged\n"
      "expect-route 2 10.0.0.0/16\n"
      "expect-route 6 10.0.0.0/16\n");
  EXPECT_TRUE(result.ok) << result.error;
  ASSERT_NE(runner.experiment(), nullptr);
  EXPECT_GT(runner.experiment()
                ->telemetry()
                .metrics()
                .counter("faults.injected")
                .value(),
            0);
}

struct ChaosCapture {
  std::string metrics;
  std::string ribs;
  std::string monitors;
};

/// One injector-driven chaos trial: flap + controller crash/restart.
ChaosCapture run_chaos_trial(std::uint64_t seed) {
  Experiment exp{topology::clique(6),
                 {core::AsNumber{5}, core::AsNumber{6}}, fast_config(seed)};
  exp.announce_prefix(core::AsNumber{1}, kPfx);
  EXPECT_TRUE(exp.start());
  exp.attach_monitor<FaultInjector>(FaultPlan::parse(
      "seed 9\n"
      "at 0.2 flap 1 2 2 0.5\n"
      "at 1 controller-crash\n"
      "at 4 controller-restart\n"));
  exp.run_for(core::Duration::seconds(8));
  exp.wait_converged();
  ChaosCapture cap;
  cap.metrics = exp.telemetry().metrics().snapshot().dump();
  cap.ribs = rib_snapshot(exp);
  cap.monitors = exp.monitors_snapshot().dump();
  return cap;
}

TEST(FaultDeterminism, ChaosTrialsByteIdenticalAcrossJobCounts) {
  // The tentpole invariant: a fault-plan trial is byte-identical whether
  // trials run serially or on 4 workers.
  const auto run_with_jobs = [](std::size_t jobs) {
    std::vector<ChaosCapture> caps(4);
    parallel_for_index(4, jobs, [&](std::size_t i) {
      caps[i] = run_chaos_trial(100 + i);
    });
    return caps;
  };
  const auto serial = run_with_jobs(1);
  const auto parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << "seed " << 100 + i;
    EXPECT_EQ(serial[i].ribs, parallel[i].ribs) << "seed " << 100 + i;
    EXPECT_EQ(serial[i].monitors, parallel[i].monitors) << "seed " << 100 + i;
  }
}

}  // namespace
}  // namespace bgpsdn::framework
