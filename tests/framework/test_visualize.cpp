// DOT export tests: structure of topology and forwarding graphs.
#include <gtest/gtest.h>

#include "framework/visualize.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::framework {
namespace {

TEST(Visualize, TopologyDotContainsNodesAndEdges) {
  auto spec = topology::clique(3);
  const auto dot = topology_dot(spec);
  EXPECT_NE(dot.find("graph topology {"), std::string::npos);
  EXPECT_NE(dot.find("as1 [label=\"AS1\""), std::string::npos);
  EXPECT_NE(dot.find("as1 -- as2"), std::string::npos);
  EXPECT_NE(dot.find("as2 -- as3"), std::string::npos);
  EXPECT_EQ(dot.find("cluster_sdn"), std::string::npos);  // no members
}

TEST(Visualize, MembersRenderedAsClusterSubgraph) {
  auto spec = topology::clique(4);
  const auto dot = topology_dot(spec, {core::AsNumber{3}, core::AsNumber{4}});
  EXPECT_NE(dot.find("subgraph cluster_sdn"), std::string::npos);
  EXPECT_NE(dot.find("as3 [label=\"AS3\", shape=box"), std::string::npos);
  EXPECT_NE(dot.find("as1 [label=\"AS1\", shape=ellipse]"), std::string::npos);
}

TEST(Visualize, RelationshipsStyleEdges) {
  topology::TopologySpec spec;
  spec.add_as(core::AsNumber{1});
  spec.add_as(core::AsNumber{2});
  spec.add_as(core::AsNumber{3});
  spec.add_link(core::AsNumber{1}, core::AsNumber{2},
                bgp::Relationship::kCustomer);
  spec.add_link(core::AsNumber{2}, core::AsNumber{3}, bgp::Relationship::kPeer);
  const auto dot = topology_dot(spec);
  EXPECT_NE(dot.find("label=\"c2p\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Visualize, ForwardingDotShowsTreeTowardsOrigin) {
  ExperimentConfig cfg;
  cfg.seed = 5;
  cfg.timers.mrai = core::Duration::millis(300);
  cfg.recompute_delay = core::Duration::millis(100);
  const auto spec = topology::line(4);
  Experiment exp{spec, {core::AsNumber{3}}, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());

  const auto dot = forwarding_dot(exp, pfx);
  EXPECT_NE(dot.find("digraph forwarding {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"10.0.0.0/16\""), std::string::npos);
  // Origin is double-circled.
  EXPECT_NE(dot.find("as1 [label=\"AS1\", shape=ellipse, peripheries=2]"),
            std::string::npos);
  // The line forwards 4 -> 3 -> 2 -> 1 (AS3 egresses to AS2).
  EXPECT_NE(dot.find("as2 -> as1;"), std::string::npos);
  EXPECT_NE(dot.find("as4 -> as3;"), std::string::npos);
  EXPECT_NE(dot.find("as3 -> as2 [label=\"egress\"];"), std::string::npos);
}

TEST(Visualize, UnroutedNodesGreyedOut) {
  ExperimentConfig cfg;
  cfg.seed = 5;
  cfg.timers.mrai = core::Duration::millis(300);
  const auto spec = topology::line(3);
  Experiment exp{spec, {}, cfg};
  ASSERT_TRUE(exp.start());
  // Prefix nobody announced: everything grey, no edges.
  const auto dot = forwarding_dot(exp, *net::Prefix::parse("10.9.0.0/16"));
  EXPECT_NE(dot.find("color=grey"), std::string::npos);
  EXPECT_EQ(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace bgpsdn::framework
