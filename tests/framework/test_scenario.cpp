// Scenario DSL tests: full happy-path scripts, configuration plumbing,
// expectation failures, and syntax errors with line numbers.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>

#include "bgp/mrt.hpp"
#include "framework/scenario.hpp"

namespace bgpsdn::framework {
namespace {

TEST(Scenario, WithdrawalScriptRunsEndToEnd) {
  ScenarioRunner runner;
  const auto result = runner.run(R"(
# a miniature Fig.2-style data point
seed 7
mrai 0.3
recompute-delay 0.1
topology clique 5
sdn 4 5
announce 1 10.0.0.0/16
start
expect-route 2 10.0.0.0/16
expect-route 4 10.0.0.0/16
withdraw 1 10.0.0.0/16
wait-converged
expect-no-route 2 10.0.0.0/16
expect-no-route 4 10.0.0.0/16
)");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_GE(result.output.size(), 6u);
  EXPECT_NE(result.output[0].find("started: 5 ASes"), std::string::npos);
  bool has_converged_line = false;
  for (const auto& line : result.output) {
    has_converged_line |= line.find("converged") != std::string::npos;
  }
  EXPECT_TRUE(has_converged_line);
}

TEST(Scenario, HostsTraceAndLinkCommands) {
  ScenarioRunner runner;
  const auto result = runner.run(R"(
seed 3
mrai 0.3
recompute-delay 0.1
topology ring 6
sdn 4
host 1
host 4
start
expect-reachable 4 1
print-trace 4 1
fail-link 3 4
wait-converged
expect-reachable 4 1
restore-link 3 4
wait-converged
print-rib 2
print-time
)");
  ASSERT_TRUE(result.ok) << result.error;
  bool has_trace = false, has_rib = false, has_time = false;
  for (const auto& line : result.output) {
    has_trace |= line.find("trace AS4 ->") != std::string::npos;
    has_rib |= line.find("AS2 10.") != std::string::npos;
    has_time |= line.find("t=") != std::string::npos;
  }
  EXPECT_TRUE(has_trace);
  EXPECT_TRUE(has_rib);
  EXPECT_TRUE(has_time);
}

TEST(Scenario, FailedExpectationNamesLine) {
  ScenarioRunner runner;
  const auto result = runner.run(
      "topology clique 3\n"
      "start\n"
      "expect-route 2 10.0.0.0/16\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 3"), std::string::npos);
  EXPECT_NE(result.error.find("lacks 10.0.0.0/16"), std::string::npos);
}

TEST(Scenario, SyntaxErrorsAreReported) {
  const auto expect_error = [](const std::string& script,
                               const std::string& needle) {
    ScenarioRunner runner;
    const auto result = runner.run(script);
    EXPECT_FALSE(result.ok) << script;
    EXPECT_NE(result.error.find(needle), std::string::npos)
        << script << " -> " << result.error;
  };
  expect_error("frobnicate 1\n", "unknown command");
  expect_error("topology moebius 4\n", "unknown topology model");
  expect_error("topology clique 4\nsdn 9\n", "AS9 not in topology");
  expect_error("announce 1 not-a-prefix\n", "bad prefix");
  expect_error("withdraw 1 10.0.0.0/16\n", "requires 'start'");
  expect_error("topology clique 3\nstart\nseed 4\n", "before 'start'");
  expect_error("topology clique 3\nstart\nstart\n", "already started");
  expect_error("mrai x\n", "bad number");
  expect_error("start\n", "no topology");
}

TEST(Scenario, CommentsAndBlankLinesIgnored) {
  ScenarioRunner runner;
  const auto result = runner.run(
      "# full-line comment\n"
      "\n"
      "topology clique 3   # trailing comment\n"
      "start\n");
  ASSERT_TRUE(result.ok) << result.error;
}

TEST(Scenario, RuntimeAnnouncementCommand) {
  ScenarioRunner runner;
  const auto result = runner.run(R"(
mrai 0.3
recompute-delay 0.1
topology clique 4
sdn 4
start
announce 4 10.200.0.0/16
wait-converged
expect-route 1 10.200.0.0/16
)");
  ASSERT_TRUE(result.ok) << result.error;
  // The SDN switch originated it; the legacy AS sees the member's AS.
  ASSERT_NE(runner.experiment(), nullptr);
  const auto* route = runner.experiment()->router(core::AsNumber{1}).loc_rib().find(
      *net::Prefix::parse("10.200.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->attributes->as_path.to_string(), "4");
}

TEST(Scenario, RouteFlowControllerSelectable) {
  ScenarioRunner runner;
  const auto result = runner.run(R"(
mrai 0.4
controller routeflow
topology clique 4
sdn 3 4
announce 1 10.0.0.0/16
start
wait-converged
expect-route 3 10.0.0.0/16
)");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_NE(runner.experiment(), nullptr);
  EXPECT_NE(runner.experiment()->routeflow_controller(), nullptr);
  EXPECT_EQ(runner.experiment()->idr_controller(), nullptr);
}

TEST(Scenario, ReplicaCommandsDriveFailover) {
  ScenarioRunner runner;
  const auto result = runner.run(R"(
seed 5
mrai 0.3
recompute-delay 0.1
replicas 2
election-timeout-ms 150
topology clique 5
sdn 4 5
host 1
announce 1 10.0.0.0/16
start
expect-reachable 5 1
crash controller 0
run 1
expect-reachable 5 1
crash controller 1
run 10
restart controller 1
wait-converged
expect-reachable 5 1
)");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_NE(runner.experiment(), nullptr);
  auto* rs = runner.experiment()->replica_set();
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->size(), 2u);
  EXPECT_GE(rs->counters().takeovers, 1u);
  EXPECT_FALSE(rs->degraded());
  ASSERT_TRUE(rs->leader().has_value());
  EXPECT_EQ(*rs->leader(), 1u);
}

TEST(Scenario, ReplicaSyntaxErrorsAreExact) {
  const auto expect_error = [](const std::string& script,
                               const std::string& needle) {
    ScenarioRunner runner;
    const auto result = runner.run(script);
    EXPECT_FALSE(result.ok) << script;
    EXPECT_NE(result.error.find(needle), std::string::npos)
        << script << " -> " << result.error;
  };
  expect_error("replicas 0\n", "replicas '0' must be an integer in [1, 16]");
  expect_error("replicas 17\n", "replicas '17' must be an integer in [1, 16]");
  expect_error("replicas 2.5\n",
               "replicas '2.5' must be an integer in [1, 16]");
  expect_error("election-timeout-ms 0\n",
               "election-timeout-ms '0' must be > 0");
  expect_error("topology clique 3\nstart\nreplicas 2\n", "before 'start'");
  expect_error(
      "topology clique 4\nsdn 4\nstart\ncrash controller x\n",
      "controller replica id 'x' must be a non-negative integer");
  expect_error("topology clique 4\nsdn 4\nstart\ncrash controller 1\n",
               "replica id 1 out of range (controller_replicas=1)");
  expect_error("topology clique 4\nsdn 4\nstart\ncrash controller 0 0\n",
               "usage: crash controller [replica]|speaker");
  expect_error("topology clique 4\nsdn 4\nstart\ncrash speaker 1\n",
               "usage: crash speaker");
  // The error carries the offending line number.
  ScenarioRunner runner;
  const auto result =
      runner.run("topology clique 4\nsdn 4\nstart\ncrash controller 3\n");
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 4"), std::string::npos);
}

TEST(Scenario, SynthCaidaTopology) {
  ScenarioRunner runner;
  const auto result = runner.run(
      "seed 9\n"
      "mrai 0.3\n"
      "topology synth-caida 20\n"
      "start\n"
      "print-time\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.output[0].find("gao-rexford"), std::string::npos);
}

TEST(Scenario, DampingToggle) {
  ScenarioRunner runner;
  const auto result = runner.run(
      "damping on\n"
      "topology clique 3\n"
      "start\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(runner.experiment()
                  ->router(core::AsNumber{1})
                  .config()
                  .damping.enabled);
}

TEST(Scenario, DumpMrtWritesReadableFile) {
  const std::string path = ::testing::TempDir() + "/scenario_tape.mrt";
  ScenarioRunner runner;
  const auto result = runner.run(
      "mrai 0.3\n"
      "topology clique 3\n"
      "announce 1 10.0.0.0/16\n"
      "start\n"
      "withdraw 1 10.0.0.0/16\n"
      "wait-converged\n"
      "dump-mrt " + path + "\n");
  ASSERT_TRUE(result.ok) << result.error;

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good());
  std::vector<char> raw{std::istreambuf_iterator<char>{in},
                        std::istreambuf_iterator<char>{}};
  std::vector<std::byte> data(raw.size());
  std::memcpy(data.data(), raw.data(), raw.size());
  const auto records = bgp::read_mrt(data);
  ASSERT_TRUE(records.has_value());
  // At least one announcement and one withdrawal were observed.
  EXPECT_GE(records->size(), 2u);
}

}  // namespace
}  // namespace bgpsdn::framework
