// The incremental-recomputation acceptance criteria: for the same seeded
// scenario, the delta-SPT engine and the from-scratch reference must leave
// every observable byte identical — legacy Loc-RIBs, member flow tables,
// convergence instants, and the telemetry snapshot minus the counters that
// measure the engines themselves — at 1 and at 4 worker threads. A final
// test pins the point of the refactor: the incremental engine must do far
// less recomputation work under topology churn.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "framework/experiment.hpp"
#include "framework/trial.hpp"
#include "telemetry/json.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::framework {
namespace {

using core::AsNumber;

// Counters/histograms that *measure the recomputation engine* and so are
// divergent between modes by design. Everything else must match.
bool engine_internal(const std::string& name) {
  return name == "ctrl.idr.prefix_recomputes" ||
         name == "ctrl.idr.prefixes_dirty" ||
         name == "ctrl.idr.spt_vertices_replayed" ||
         name == "ctrl.idr.batch_prefixes";
}

std::string filtered_metrics(const telemetry::Json& snapshot) {
  telemetry::Json out = telemetry::Json::object();
  for (const char* section : {"counters", "gauges", "histograms"}) {
    telemetry::Json kept = telemetry::Json::object();
    if (const auto* s = snapshot.find(section)) {
      for (const auto& [name, value] : s->entries()) {
        if (!engine_internal(name)) kept[name] = value;
      }
    }
    out[section] = std::move(kept);
  }
  return out.dump();
}

struct EquivCapture {
  std::string ribs;
  std::string flows;
  std::string metrics;
  std::vector<double> checkpoints;  // loop clock after each wait_converged
};

ExperimentConfig scenario_config(bool incremental, std::uint64_t seed,
                                 bool bridging) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.incremental_spt = incremental;
  cfg.subcluster_bridging = bridging;
  cfg.timers.mrai = core::Duration::millis(500);
  cfg.recompute_delay = core::Duration::millis(200);
  return cfg;
}

void capture_state(Experiment& exp, EquivCapture& cap) {
  // Legacy Loc-RIBs, sorted AS-then-prefix so the dump is canonical.
  std::map<std::string, std::string> ribs;
  for (const auto as : exp.spec().ases) {
    if (exp.is_member(as)) continue;
    const auto& rib = exp.router(as).loc_rib();
    for (const auto& prefix : rib.prefixes()) {
      const auto* route = rib.find(prefix);
      ribs[as.to_string() + " " + prefix.to_string()] =
          route->attributes->to_string();
    }
  }
  for (const auto& [key, value] : ribs) {
    cap.ribs += key + " -> " + value + "\n";
  }
  // Member flow tables, in table order (which is itself part of the
  // contract: priority ties break on insertion order).
  for (const auto as : exp.spec().ases) {
    if (!exp.is_member(as)) continue;
    cap.flows += "== " + as.to_string() + "\n";
    for (const auto& e : exp.member_switch(as).table().entries()) {
      cap.flows += e.to_string() + "\n";
    }
  }
}

// One seeded churn scenario on an 8-AS ring with a 4-member cluster chain
// (3-4-5-6). The ring makes intra-cluster distance matter, and failing the
// middle cluster link splits the members into two sub-clusters, exercising
// the bridging fallback (or the pruning path with bridging off).
EquivCapture run_ring_churn(bool incremental, std::uint64_t seed,
                            bool bridging) {
  const auto spec = topology::ring(8);
  Experiment exp{spec,
                 {AsNumber{3}, AsNumber{4}, AsNumber{5}, AsNumber{6}},
                 scenario_config(incremental, seed, bridging)};
  const auto pfx = *net::Prefix::parse("10.99.0.0/16");
  exp.announce_prefix(AsNumber{1}, pfx);

  EquivCapture cap;
  const auto checkpoint = [&] {
    exp.wait_converged();
    cap.checkpoints.push_back(exp.loop().now().nanos_since_origin() * 1e-9);
  };

  EXPECT_TRUE(exp.start());
  checkpoint();

  // Route churn with no topology change.
  exp.withdraw_prefix(AsNumber{1}, pfx);
  checkpoint();
  exp.announce_prefix(AsNumber{1}, pfx);
  checkpoint();

  // Cluster-link churn: the edge-delta changelog path.
  exp.fail_link(AsNumber{4}, AsNumber{5});  // splits {3,4} | {5,6}
  checkpoint();
  exp.restore_link(AsNumber{4}, AsNumber{5});
  checkpoint();
  exp.fail_link(AsNumber{5}, AsNumber{6});
  checkpoint();
  exp.restore_link(AsNumber{5}, AsNumber{6});
  checkpoint();

  // Legacy-link churn: route updates through the speaker.
  exp.fail_link(AsNumber{1}, AsNumber{2});
  checkpoint();
  exp.restore_link(AsNumber{1}, AsNumber{2});
  checkpoint();

  capture_state(exp, cap);
  cap.metrics = filtered_metrics(exp.telemetry().metrics().snapshot());
  return cap;
}

void expect_equal_captures(const EquivCapture& inc, const EquivCapture& ref,
                           const char* what) {
  // Guard against vacuous equality: the scenario must actually produce
  // routes and flow rules.
  EXPECT_FALSE(inc.ribs.empty()) << what;
  EXPECT_NE(inc.flows.find("dst="), std::string::npos) << what;
  EXPECT_EQ(inc.ribs, ref.ribs) << what;
  EXPECT_EQ(inc.flows, ref.flows) << what;
  EXPECT_EQ(inc.metrics, ref.metrics) << what;
  ASSERT_EQ(inc.checkpoints.size(), ref.checkpoints.size()) << what;
  for (std::size_t i = 0; i < inc.checkpoints.size(); ++i) {
    // Bit-equal, not approximately equal: convergence timing must not move.
    EXPECT_EQ(inc.checkpoints[i], ref.checkpoints[i]) << what << " #" << i;
  }
}

TEST(IncrementalEquivalence, RingChurnWithBridging) {
  for (const std::uint64_t seed : {11u, 12u}) {
    expect_equal_captures(run_ring_churn(true, seed, true),
                          run_ring_churn(false, seed, true), "bridging");
  }
}

TEST(IncrementalEquivalence, RingChurnWithoutBridging) {
  expect_equal_captures(run_ring_churn(true, 13, false),
                        run_ring_churn(false, 13, false), "no-bridging");
}

TEST(IncrementalEquivalence, ByteIdenticalAcrossJobCounts) {
  // Both engines, two seeds, raced across worker threads: the captures must
  // not depend on the job count (the PR-1 determinism invariant extended to
  // the delta engine).
  const auto run_with_jobs = [](std::size_t jobs) {
    std::vector<EquivCapture> caps(4);
    parallel_for_index(4, jobs, [&](std::size_t i) {
      caps[i] = run_ring_churn(/*incremental=*/i % 2 == 0, 31 + i / 2, true);
    });
    return caps;
  };
  const auto serial = run_with_jobs(1);
  const auto threaded = run_with_jobs(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].ribs, threaded[i].ribs) << i;
    EXPECT_EQ(serial[i].flows, threaded[i].flows) << i;
    EXPECT_EQ(serial[i].metrics, threaded[i].metrics) << i;
  }
}

TEST(IncrementalEquivalence, ChurnRecomputeCostReduction) {
  // The cost criterion: under a cluster-link flap train, the incremental
  // engine's settle work (spt_vertices_replayed) must be at least 5x below
  // what the reference pays (one settle per tree vertex per recomputed
  // prefix). Measured over the churn phase only — both engines pay the same
  // initial tree builds.
  const auto run_flaps = [](bool incremental) {
    const auto spec = topology::clique(8);
    std::set<AsNumber> members;
    for (std::uint32_t a = 3; a <= 8; ++a) members.insert(AsNumber{a});
    Experiment exp{spec, members, scenario_config(incremental, 5, true)};
    exp.announce_prefix(AsNumber{1}, *net::Prefix::parse("10.91.0.0/16"));
    exp.announce_prefix(AsNumber{1}, *net::Prefix::parse("10.92.0.0/16"));
    exp.announce_prefix(AsNumber{2}, *net::Prefix::parse("10.93.0.0/16"));
    exp.announce_prefix(AsNumber{2}, *net::Prefix::parse("10.94.0.0/16"));
    EXPECT_TRUE(exp.start());
    exp.wait_converged();
    const auto& m = exp.telemetry().metrics();
    const auto counter = [&m](const char* name) -> std::uint64_t {
      const auto* c = m.find_counter(name);
      return c == nullptr ? 0 : static_cast<std::uint64_t>(c->value());
    };
    const std::uint64_t recomputes0 = counter("ctrl.idr.prefix_recomputes");
    const std::uint64_t replayed0 = counter("ctrl.idr.spt_vertices_replayed");
    for (int i = 0; i < 6; ++i) {
      exp.fail_link(AsNumber{3}, AsNumber{4});
      exp.wait_converged();
      exp.restore_link(AsNumber{3}, AsNumber{4});
      exp.wait_converged();
    }
    struct Cost {
      std::uint64_t recomputes;
      std::uint64_t replayed;
      std::uint64_t tree_vertices;
    } cost;
    cost.recomputes = counter("ctrl.idr.prefix_recomputes") - recomputes0;
    cost.replayed = counter("ctrl.idr.spt_vertices_replayed") - replayed0;
    cost.tree_vertices = exp.members().size() + 1;  // switches + dest node
    return cost;
  };
  const auto inc = run_flaps(true);
  const auto ref = run_flaps(false);
  // The reference re-settles every tree vertex of every known prefix on
  // every flap; the incremental engine only touches the affected region.
  const std::uint64_t ref_settles = ref.recomputes * ref.tree_vertices;
  EXPECT_GT(ref_settles, 0u);
  EXPECT_LE(inc.replayed * 5, ref_settles)
      << "incremental replayed " << inc.replayed << " vs reference settles "
      << ref_settles;
}

}  // namespace
}  // namespace bgpsdn::framework
