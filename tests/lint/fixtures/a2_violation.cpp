// Fixture: A2 — allocations inside an annotated hot path (never
// compiled).
#include <memory>
#include <string>
#include <vector>

// lint: hotpath(per-event decision loop of the fixture router)
int process(const std::vector<int>& events) {
  std::vector<int> out;
  for (const int e : events) out.push_back(e);
  auto p = std::make_unique<int>(7);
  std::string label = "ev";
  label += " tail";
  return static_cast<int>(out.size()) + *p + static_cast<int>(label.size());
}
