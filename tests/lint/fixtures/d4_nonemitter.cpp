// Fixture: D4 constructs outside any emitter path are tolerated (never
// compiled).
#include <set>

struct Node { int id; };

std::set<Node*> order_nodes() { return {}; }
