// Fixture: D3 via the changelog path — controller/switch_graph.hpp marks
// this file as an emitter (its edge-delta changelog is emitter-ordered
// state), so unordered iteration is flagged (never compiled).
#include "controller/switch_graph.hpp"

#include <unordered_map>

int dirty_total(const std::unordered_map<int, int>& dirty) {
  int total = 0;
  for (const auto& [prefix, rev] : dirty) total += rev + prefix;
  return total;
}
