// Fixture: D4 waived — the pointees are interned in one stable arena, so
// pointer order equals arena order (never compiled).
#include "telemetry/json.hpp"

#include <set>

struct Node { int id; };

// lint: ptr-order-ok(nodes live in one arena; order equals arena order)
std::set<Node*> order_nodes() { return {}; }
