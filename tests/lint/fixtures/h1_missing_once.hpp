// Fixture: H1 — header without #pragma once (never compiled).

inline int answer() { return 42; }
