// Fixture: D3 does not apply outside emitter code paths — no telemetry
// include, so the same loop is fine (never compiled).
#include <unordered_map>

int sum_values(const std::unordered_map<int, int>& table) {
  int total = 0;
  for (const auto& [key, value] : table) total += value + key;
  return total;
}
