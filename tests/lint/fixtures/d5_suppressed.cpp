// Fixture: D5 waived — the source vector is sorted upstream, so the
// accumulation order is pinned (never compiled).
#include "telemetry/json.hpp"

#include <vector>

double total(const std::vector<double>& sorted_xs) {
  double sum = 0.0;
  // lint: float-order-ok(sorted_xs is sorted by the caller; order pinned)
  for (const double x : sorted_xs) sum += x;
  return sum;
}
