// Fixture: P1 — suppression pragma missing its mandatory reason, so the
// D1 finding underneath stays live too (never compiled).
#include <chrono>

int main() {
  // lint: wall-clock-ok
  auto t = std::chrono::steady_clock::now();
  (void)t;
  return 0;
}
