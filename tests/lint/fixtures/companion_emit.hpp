// Fixture: companion header — the unordered alias and member declared here
// must be visible when linting companion_emit.cpp (never compiled).
#pragma once

#include <string>
#include <unordered_map>

struct RowStore {
  using Table = std::unordered_map<std::string, int>;
  Table rows_;
};
