// Fixture: D3 inherited from the companion header — changelog_companion.hpp
// includes controller/switch_graph.hpp, so this .cpp is an emitter even
// though it names no emitter header itself (never compiled).
#include "changelog_companion.hpp"

int count_dirty(const DirtySet& set) {
  int total = 0;
  for (const int prefix : set.prefixes_) total += prefix;
  return total;
}
