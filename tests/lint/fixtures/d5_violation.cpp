// Fixture: D5 — order-sensitive float accumulation in an emitter code
// path (never compiled).
#include "telemetry/json.hpp"

#include <numeric>
#include <vector>

double total(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum + std::accumulate(xs.begin(), xs.end(), 0.0);
}
