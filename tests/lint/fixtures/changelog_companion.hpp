// Fixture: companion header on the changelog path — the emitter include
// lives here, not in the .cpp, mirroring as_topology.hpp/as_topology.cpp
// (never compiled).
#pragma once

#include <unordered_set>

#include "controller/switch_graph.hpp"

struct DirtySet {
  std::unordered_set<int> prefixes_;
};
