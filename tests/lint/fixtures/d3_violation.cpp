// Fixture: D3 — unordered iteration in an emitter code path; the include
// below marks this file as an emitter (never compiled).
#include "telemetry/json.hpp"

#include <unordered_map>

int sum_values(const std::unordered_map<int, int>& table) {
  int total = 0;
  for (const auto& [key, value] : table) total += value + key;
  return total;
}
