// Fixture: D2 — ambient randomness (never compiled).
#include <cstdlib>
#include <random>

int main() {
  std::random_device rd;
  std::mt19937_64 unseeded;
  return rand();
}
