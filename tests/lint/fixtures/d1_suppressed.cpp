// Fixture: D1 waived by a reasoned pragma (never compiled).
#include <chrono>

double footer_wall() {
  // lint: wall-clock-ok(wall footer timing outside the determinism contract)
  auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
