// Fixture: A2 waived with a reasoned alloc-ok pragma (never compiled).
#include <memory>

// lint: hotpath(fixture warm-up path)
int build() {
  // lint: alloc-ok(one-time warmup allocation, amortized over the run)
  auto p = std::make_unique<int>(3);
  return *p;
}
