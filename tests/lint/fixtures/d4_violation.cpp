// Fixture: D4 — ordering and hashing by pointer value in an emitter
// code path (never compiled).
#include "telemetry/json.hpp"

#include <map>
#include <set>

struct Node { int id; };

std::set<Node*> order_nodes() { return {}; }
std::map<Node*, int> rank_nodes() { return {}; }

int compare(const Node* x, const Node* y) {
  auto cmp = [](const Node* a, const Node* b) { return a < b; };
  return cmp(x, y) ? 1 : 0;
}
