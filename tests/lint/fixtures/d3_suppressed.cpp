// Fixture: D3 waived with a reasoned pragma (never compiled).
#include "telemetry/json.hpp"

#include <unordered_map>

int sum_values(const std::unordered_map<int, int>& table) {
  int total = 0;
  // lint: unordered-ok(summation is order-independent)
  for (const auto& [key, value] : table) total += value + key;
  return total;
}
