// Fixture: fully clean translation unit — ordered containers, seeded
// randomness, no wall clock, no raw threads (never compiled).
#include <cstdint>
#include <map>
#include <random>
#include <string>

int tally(const std::map<std::string, int>& ordered, std::uint64_t seed) {
  std::mt19937_64 engine{seed};
  int total = static_cast<int>(engine() & 0xff);
  for (const auto& [name, value] : ordered) total += value;
  return total;
}
