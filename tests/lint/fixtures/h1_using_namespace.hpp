// Fixture: H1 — using-directive in a header (never compiled).
#pragma once

#include <string>

using namespace std;

inline string shout(const string& s) { return s + "!"; }
