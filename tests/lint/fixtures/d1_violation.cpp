// Fixture: D1 — wall clock in simulation code (never compiled).
#include <chrono>

int main() {
  auto t = std::chrono::steady_clock::now();
  (void)t;
  return 0;
}
