// Fixture: T1 — raw threading outside src/framework/trial.* (never compiled).
#include <atomic>
#include <thread>

void spin() {
  std::atomic<int> hits{0};
  std::thread worker{[&] { hits.fetch_add(1); }};
  worker.detach();
}
