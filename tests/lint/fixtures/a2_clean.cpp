// Fixture: A2 — hot path that pre-reserves its locals and pushes into
// member scratch (never compiled).
#include <vector>

struct Engine {
  std::vector<int> scratch_;

  // lint: hotpath(steady-state event application)
  int apply(const std::vector<int>& events) {
    std::vector<int> out;
    out.reserve(events.size());
    for (const int e : events) {
      out.push_back(e);
      scratch_.push_back(e);
    }
    return static_cast<int>(out.size() + scratch_.size());
  }
};
