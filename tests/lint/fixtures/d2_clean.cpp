// Fixture: D2-clean — engines seeded from an explicit trial seed are the
// sanctioned pattern (never compiled).
#include <cstdint>
#include <random>

int draw(std::uint64_t trial_seed) {
  std::mt19937_64 engine{trial_seed};
  std::uniform_int_distribution<int> dist{0, 9};
  return dist(engine);
}
