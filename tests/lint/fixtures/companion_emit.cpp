// Fixture: D3 across the .cpp/.hpp pair — rows_ is declared unordered in
// companion_emit.hpp, mirroring metrics.cpp/metrics.hpp (never compiled).
#include "companion_emit.hpp"

#include "telemetry/json.hpp"

int total(const RowStore& store) {
  int sum = 0;
  for (const auto& [name, value] : store.rows_) sum += value;
  return sum;
}
