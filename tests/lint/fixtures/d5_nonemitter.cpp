// Fixture: D5 constructs outside any emitter path are tolerated (never
// compiled).
#include <vector>

double total(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum;
}
