// Tests for the bgpsdn_lint analyzer: exact rule IDs, line numbers, and
// exit codes over the fixture corpus in tests/lint/fixtures/, plus the
// include-graph pass, the hot-path allocation pass, the bgpsdn.lint/2
// baseline round-trip, and the pragma-reason contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

using bgpsdn::lint::CorpusFile;
using bgpsdn::lint::Finding;
using bgpsdn::lint::LayerTable;

std::string fixture(const std::string& name) {
  return std::string{BGPSDN_LINT_FIXTURE_DIR} + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in{fixture(name), std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// (rule, line) pairs in the analyzer's sorted order.
std::vector<std::pair<std::string, int>> rule_lines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

using RL = std::vector<std::pair<std::string, int>>;

// The repo's committed layer table, inlined so the tests do not depend on
// the working directory. Mirrors tools/lint/layers.txt.
LayerTable test_layers() {
  LayerTable layers;
  std::string err;
  const bool ok = bgpsdn::lint::parse_layers(
      "core 0\ntelemetry 1\nnet 2\nbgp 3\nsdn 4\ntopology 4\nspeaker 5\n"
      "controller 6\nframework 7\nlint 8\ntools 9\nbench 9\nexamples 9\n"
      "tests 10\n",
      layers, &err);
  EXPECT_TRUE(ok) << err;
  return layers;
}

TEST(LintD1, FlagsWallClockWithExactLine) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d1_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D1", 5}}));
  EXPECT_EQ(findings[0].token, "steady_clock");
  EXPECT_EQ(bgpsdn::lint::exit_code_for(findings), 1);
}

TEST(LintD1, ReasonedPragmaSuppresses) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d1_suppressed.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
  EXPECT_EQ(bgpsdn::lint::exit_code_for(findings), 0);
}

TEST(LintP1, PragmaWithoutReasonFailsAndDoesNotSuppress) {
  const auto findings =
      bgpsdn::lint::lint_file(fixture("d1_pragma_noreason.cpp"));
  // The D1 site stays live AND the bare pragma is itself a finding.
  EXPECT_EQ(rule_lines(findings), (RL{{"P1", 6}, {"D1", 7}}));
  EXPECT_EQ(bgpsdn::lint::exit_code_for(findings), 1);
}

TEST(LintP1, UnknownTagIsFlagged) {
  const auto findings = bgpsdn::lint::lint_text(
      "probe.cpp", "int x = 0;  // lint: wallclock-okay(typo tag)\n");
  EXPECT_EQ(rule_lines(findings), (RL{{"P1", 1}}));
  EXPECT_EQ(findings[0].token, "wallclock-okay");
}

TEST(LintP1, HotpathWithoutReasonIsFlagged) {
  const auto findings = bgpsdn::lint::lint_text(
      "probe.cpp", "// lint: hotpath()\nint f() { return 0; }\n");
  EXPECT_EQ(rule_lines(findings), (RL{{"P1", 1}}));
  EXPECT_EQ(findings[0].token, "hotpath");
}

TEST(LintD2, FlagsAmbientRandomnessWithExactLines) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d2_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D2", 6}, {"D2", 7}, {"D2", 8}}));
  EXPECT_EQ(findings[0].token, "random_device");
  EXPECT_EQ(findings[1].token, "mt19937_64 unseeded");
  EXPECT_EQ(findings[2].token, "rand()");
}

TEST(LintD2, SeededEngineIsClean) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d2_clean.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD3, FlagsUnorderedIterationInEmitter) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d3_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D3", 9}}));
  EXPECT_EQ(findings[0].token, "table");
}

TEST(LintD3, ReasonedPragmaSuppresses) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d3_suppressed.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD3, DoesNotApplyOutsideEmitterPaths) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d3_nonemitter.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD3, CompanionHeaderDeclarationsAreVisible) {
  // rows_ is declared unordered in companion_emit.hpp via a using-alias;
  // linting the .cpp must resolve it, mirroring metrics.cpp/metrics.hpp.
  const auto findings =
      bgpsdn::lint::lint_file(fixture("companion_emit.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D3", 9}}));
  EXPECT_EQ(findings[0].token, "rows_");
}

TEST(LintD3, SwitchGraphChangelogIsEmitterPath) {
  // controller/switch_graph.hpp carries the edge-delta changelog, whose
  // append order is part of the deterministic output contract.
  const auto findings = bgpsdn::lint::lint_file(fixture("d3_changelog.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D3", 10}}));
  EXPECT_EQ(findings[0].token, "dirty");
}

TEST(LintD3, EmitterStatusInheritedFromCompanionHeader) {
  // The emitter include lives in changelog_companion.hpp; linting the .cpp
  // must still classify it, mirroring as_topology.cpp/as_topology.hpp.
  const auto findings =
      bgpsdn::lint::lint_file(fixture("changelog_companion.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D3", 8}}));
  EXPECT_EQ(findings[0].token, "prefixes_");
}

// --- D4: pointer-value ordering in emitter paths ---------------------------

TEST(LintD4, FlagsPointerKeyedContainersAndComparatorLambdas) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d4_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D4", 10}, {"D4", 11}, {"D4", 14}}));
  EXPECT_EQ(findings[0].token, "set<T*>");
  EXPECT_EQ(findings[1].token, "map<T*>");
  EXPECT_EQ(findings[2].token, "a<b");
}

TEST(LintD4, FlagsStdLessAndStdHashOverPointers) {
  const auto findings = bgpsdn::lint::lint_text(
      "src/telemetry/probe.cpp",
      "#include <functional>\n"
      "struct Node { int id; };\n"
      "std::less<Node*> cmp;\n"
      "std::hash<const Node*> h;\n");
  EXPECT_EQ(rule_lines(findings), (RL{{"D4", 3}, {"D4", 4}}));
  EXPECT_EQ(findings[0].token, "less<T*>");
  EXPECT_EQ(findings[1].token, "hash<T*>");
}

TEST(LintD4, PointerMappedValuesAreTolerated) {
  // Only pointer *keys* order iteration; map<Id, T*> is the common, legal
  // registry shape (peers_by_session_ and friends).
  const auto findings = bgpsdn::lint::lint_text(
      "src/telemetry/probe.cpp",
      "#include <map>\n"
      "struct Node { int id; };\n"
      "std::map<int, Node*> registry;\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD4, ReasonedPragmaSuppresses) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d4_suppressed.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD4, DoesNotApplyOutsideEmitterPaths) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d4_nonemitter.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

// --- D5: float accumulation order in emitter paths -------------------------

TEST(LintD5, FlagsAccumulateAndRangeForCompound) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d5_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D5", 10}, {"D5", 11}}));
  EXPECT_EQ(findings[0].token, "sum +=");
  EXPECT_EQ(findings[1].token, "accumulate");
}

TEST(LintD5, ReasonedPragmaSuppresses) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d5_suppressed.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD5, DoesNotApplyOutsideEmitterPaths) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d5_nonemitter.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD5, IntegerAccumulationIsTolerated) {
  const auto findings = bgpsdn::lint::lint_text(
      "src/telemetry/probe.cpp",
      "#include <vector>\n"
      "int total(const std::vector<int>& xs) {\n"
      "  int sum = 0;\n"
      "  for (const int x : xs) sum += x;\n"
      "  return sum;\n"
      "}\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

// --- A2: hot-path allocation pass ------------------------------------------

TEST(LintA2, FlagsAllocationsInAnnotatedScope) {
  const auto findings = bgpsdn::lint::lint_file(fixture("a2_violation.cpp"));
  EXPECT_EQ(rule_lines(findings),
            (RL{{"A2", 10}, {"A2", 11}, {"A2", 12}, {"A2", 13}}));
  EXPECT_EQ(findings[0].token, "out.push_back");
  EXPECT_EQ(findings[1].token, "make_unique");
  EXPECT_EQ(findings[2].token, "string label");
  EXPECT_EQ(findings[3].token, "+= \"...\"");
}

TEST(LintA2, ReservedLocalsAndMemberScratchAreClean) {
  const auto findings = bgpsdn::lint::lint_file(fixture("a2_clean.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintA2, ReasonedAllocOkSuppresses) {
  const auto findings = bgpsdn::lint::lint_file(fixture("a2_suppressed.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintA2, RemovingTheReserveGuardFails) {
  // The acceptance demonstration: strip the reserve() line from the clean
  // fixture and the push_back turns into a finding.
  std::string text = read_fixture("a2_clean.cpp");
  const std::string guard = "out.reserve(events.size());";
  const std::size_t at = text.find(guard);
  ASSERT_NE(at, std::string::npos);
  text.erase(at, guard.size());
  const auto findings = bgpsdn::lint::lint_text("a2_clean.cpp", text);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "A2");
  EXPECT_EQ(findings[0].token, "out.push_back");
}

TEST(LintA2, RemovingTheAllocOkGuardFails) {
  // Same demonstration for a suppression pragma: deleting the alloc-ok
  // line exposes the allocation it was covering.
  std::string text = read_fixture("a2_suppressed.cpp");
  const std::string guard =
      "// lint: alloc-ok(one-time warmup allocation, amortized over the "
      "run)";
  const std::size_t at = text.find(guard);
  ASSERT_NE(at, std::string::npos);
  text.erase(at, guard.size());
  const auto findings = bgpsdn::lint::lint_text("a2_suppressed.cpp", text);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "A2");
  EXPECT_EQ(findings[0].token, "make_unique");
}

TEST(LintA2, OutsideAnnotatedScopeIsNotScanned) {
  const auto findings = bgpsdn::lint::lint_text(
      "probe.cpp",
      "#include <memory>\n"
      "int f() { auto p = std::make_unique<int>(1); return *p; }\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintA2, HotpathWithoutFunctionBodyIsAFinding) {
  const auto findings = bgpsdn::lint::lint_text(
      "probe.cpp", "// lint: hotpath(declaration only)\nint f();\n");
  EXPECT_EQ(rule_lines(findings), (RL{{"A2", 1}}));
  EXPECT_EQ(findings[0].token, "hotpath");
}

TEST(LintA2, ThrowAndStdFunctionAndPriorityQueueAreFlagged) {
  const auto findings = bgpsdn::lint::lint_text(
      "probe.cpp",
      "#include <functional>\n"
      "#include <queue>\n"
      "// lint: hotpath(fixture)\n"
      "int f(int x) {\n"
      "  std::function<int()> g = [x] { return x; };\n"
      "  std::priority_queue<int> q;\n"
      "  if (x < 0) throw x;\n"
      "  return g() + static_cast<int>(q.size());\n"
      "}\n");
  EXPECT_EQ(rule_lines(findings), (RL{{"A2", 5}, {"A2", 6}, {"A2", 7}}));
  EXPECT_EQ(findings[0].token, "std::function");
  EXPECT_EQ(findings[1].token, "priority_queue");
  EXPECT_EQ(findings[2].token, "throw");
}

TEST(LintT1, FlagsRawThreadingWithExactLines) {
  const auto findings = bgpsdn::lint::lint_file(fixture("t1_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"T1", 6}, {"T1", 7}, {"T1", 8}}));
  EXPECT_EQ(findings[0].token, "std::atomic");
  EXPECT_EQ(findings[1].token, "std::thread");
  EXPECT_EQ(findings[2].token, "detach()");
}

TEST(LintT1, TrialRunnerFilesAreAllowlisted) {
  const auto findings = bgpsdn::lint::lint_text(
      "src/framework/trial.cpp",
      "#include <thread>\nvoid f() { std::thread t{[] {}}; t.join(); }\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintH1, MissingPragmaOnce) {
  const auto findings =
      bgpsdn::lint::lint_file(fixture("h1_missing_once.hpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"H1", 1}}));
  EXPECT_EQ(findings[0].token, "#pragma once");
}

TEST(LintH1, UsingNamespaceInHeader) {
  const auto findings =
      bgpsdn::lint::lint_file(fixture("h1_using_namespace.hpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"H1", 6}}));
  EXPECT_EQ(findings[0].token, "using namespace");
}

TEST(LintH1, IostreamInLibraryHeader) {
  const auto findings = bgpsdn::lint::lint_text(
      "src/fake/widget.hpp",
      "#pragma once\n#include <iostream>\ninline int x() { return 1; }\n");
  EXPECT_EQ(rule_lines(findings), (RL{{"H1", 2}}));
  EXPECT_EQ(findings[0].token, "<iostream>");
}

TEST(LintH1, IostreamOutsideSrcIsTolerated) {
  const auto findings = bgpsdn::lint::lint_text(
      "bench/bench_probe.hpp",
      "#pragma once\n#include <iostream>\ninline int x() { return 1; }\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintClean, FullyCleanFileHasNoFindingsAndExitZero) {
  const auto findings = bgpsdn::lint::lint_file(fixture("clean.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
  EXPECT_EQ(bgpsdn::lint::exit_code_for(findings), 0);
}

TEST(LintScan, StringsAndCommentsNeverMatch) {
  const auto findings = bgpsdn::lint::lint_text(
      "probe.cpp",
      "// steady_clock in a comment is fine\n"
      "/* std::thread in a block comment too */\n"
      "const char* s = \"system_clock rand() std::atomic\";\n"
      "const char* r = R\"(random_device)\";\n"
      "int million = 1'000'000;\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintCorpus, WholeFixtureDirectoryExactFindings) {
  const auto findings =
      bgpsdn::lint::lint_paths({std::string{BGPSDN_LINT_FIXTURE_DIR}});
  // Sorted by (file, line, rule, token); one row per expected finding.
  std::vector<std::pair<std::string, std::string>> got;
  got.reserve(findings.size());
  for (const Finding& f : findings) {
    const std::size_t slash = f.file.find_last_of('/');
    got.emplace_back(f.file.substr(slash + 1),
                     f.rule + "@" + std::to_string(f.line));
  }
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"a2_violation.cpp", "A2@10"},
      {"a2_violation.cpp", "A2@11"},
      {"a2_violation.cpp", "A2@12"},
      {"a2_violation.cpp", "A2@13"},
      {"changelog_companion.cpp", "D3@8"},
      {"companion_emit.cpp", "D3@9"},
      {"d1_pragma_noreason.cpp", "P1@6"},
      {"d1_pragma_noreason.cpp", "D1@7"},
      {"d1_violation.cpp", "D1@5"},
      {"d2_violation.cpp", "D2@6"},
      {"d2_violation.cpp", "D2@7"},
      {"d2_violation.cpp", "D2@8"},
      {"d3_changelog.cpp", "D3@10"},
      {"d3_violation.cpp", "D3@9"},
      {"d4_violation.cpp", "D4@10"},
      {"d4_violation.cpp", "D4@11"},
      {"d4_violation.cpp", "D4@14"},
      {"d5_violation.cpp", "D5@10"},
      {"d5_violation.cpp", "D5@11"},
      {"h1_missing_once.hpp", "H1@1"},
      {"h1_using_namespace.hpp", "H1@6"},
      {"t1_violation.cpp", "T1@6"},
      {"t1_violation.cpp", "T1@7"},
      {"t1_violation.cpp", "T1@8"},
  };
  EXPECT_EQ(got, expected);
}

TEST(LintCorpus, FixtureSubdirectoriesAreSkippedDuringRecursion) {
  // A parent root must not descend into a "fixtures" directory — the
  // corpus is deliberately full of violations. BGPSDN_LINT_FIXTURE_DIR is
  // <tests>/lint/fixtures, so scanning <tests>/lint must come back clean
  // of fixture findings (test_lint.cpp itself holds rule tokens only in
  // string literals, which are stripped).
  const std::string fixtures{BGPSDN_LINT_FIXTURE_DIR};
  const std::string parent = fixtures.substr(0, fixtures.find_last_of('/'));
  const auto findings = bgpsdn::lint::lint_paths({parent});
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file.find("/fixtures/"), std::string::npos) << f.file;
  }
}

// --- A1: include-graph pass -------------------------------------------------

TEST(LintLayers, ParsesTableWithCommentsAndBlankLines) {
  LayerTable layers;
  std::string err;
  ASSERT_TRUE(bgpsdn::lint::parse_layers(
      "# comment\n\ncore 0\nnet 2  # trailing comment\n", layers, &err))
      << err;
  ASSERT_NE(layers.rank_of("core"), nullptr);
  EXPECT_EQ(*layers.rank_of("core"), 0);
  ASSERT_NE(layers.rank_of("net"), nullptr);
  EXPECT_EQ(*layers.rank_of("net"), 2);
  EXPECT_EQ(layers.rank_of("unlisted"), nullptr);
}

TEST(LintLayers, RejectsMalformedAndDuplicateLines) {
  LayerTable layers;
  std::string err;
  EXPECT_FALSE(bgpsdn::lint::parse_layers("core zero\n", layers, &err));
  EXPECT_NE(err.find("line 1"), std::string::npos);
  EXPECT_FALSE(
      bgpsdn::lint::parse_layers("core 0\ncore 1\n", layers, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(LintA1, UpwardIncludeIsAFinding) {
  const std::vector<CorpusFile> files = {
      {"src/core/bad.hpp",
       "#pragma once\n#include \"framework/report.hpp\"\n"},
  };
  const auto findings =
      bgpsdn::lint::analyze_include_graph(files, test_layers());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "A1");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].token, "framework/report.hpp");
  EXPECT_NE(findings[0].message.find("upward include"), std::string::npos);
}

TEST(LintA1, SameRankCrossDirectoryIncludeIsAFinding) {
  // sdn and topology are peers at rank 4: both may build on bgp, neither
  // on the other.
  const std::vector<CorpusFile> files = {
      {"src/sdn/probe.hpp",
       "#pragma once\n#include \"topology/as_topology.hpp\"\n"},
  };
  const auto findings =
      bgpsdn::lint::analyze_include_graph(files, test_layers());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "A1");
  EXPECT_NE(findings[0].message.find("same-rank include"), std::string::npos);
}

TEST(LintA1, DownwardAndSameDirectoryIncludesAreLegal) {
  const std::vector<CorpusFile> files = {
      {"src/bgp/probe.hpp",
       "#pragma once\n#include \"core/event_loop.hpp\"\n"
       "#include \"net/prefix.hpp\"\n#include \"bgp/wire.hpp\"\n"},
  };
  EXPECT_EQ(bgpsdn::lint::analyze_include_graph(files, test_layers()),
            std::vector<Finding>{});
}

TEST(LintA1, UngovernedDirectoriesAreIgnored) {
  const std::vector<CorpusFile> files = {
      {"scripts/probe.cpp", "#include \"framework/report.hpp\"\n"},
      {"src/core/probe.hpp", "#pragma once\n#include \"generated/tbl.hpp\"\n"},
  };
  EXPECT_EQ(bgpsdn::lint::analyze_include_graph(files, test_layers()),
            std::vector<Finding>{});
}

TEST(LintA1, LayerOkPragmaWaivesTheEdge) {
  const std::vector<CorpusFile> files = {
      {"src/core/bad.hpp",
       "#pragma once\n"
       "// lint: layer-ok(transitional: interface extraction in flight)\n"
       "#include \"framework/report.hpp\"\n"},
  };
  EXPECT_EQ(bgpsdn::lint::analyze_include_graph(files, test_layers()),
            std::vector<Finding>{});
}

TEST(LintA1, IncludeCycleIsAFinding) {
  const std::vector<CorpusFile> files = {
      {"src/core/a.hpp", "#pragma once\n#include \"core/b.hpp\"\n"},
      {"src/core/b.hpp", "#pragma once\n#include \"core/a.hpp\"\n"},
  };
  const auto findings =
      bgpsdn::lint::analyze_include_graph(files, test_layers());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "A1");
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("core/a.hpp"), std::string::npos);
  EXPECT_NE(findings[0].message.find("core/b.hpp"), std::string::npos);
}

TEST(LintA1, AcyclicChainHasNoCycleFindings) {
  const std::vector<CorpusFile> files = {
      {"src/core/a.hpp", "#pragma once\n#include \"core/b.hpp\"\n"},
      {"src/core/b.hpp", "#pragma once\n#include \"core/c.hpp\"\n"},
      {"src/core/c.hpp", "#pragma once\n"},
  };
  EXPECT_EQ(bgpsdn::lint::analyze_include_graph(files, test_layers()),
            std::vector<Finding>{});
}

TEST(LintA1, RepoSourceTreeIsLayerMonotoneAndCycleFree) {
  // The committed acceptance property, provable from anywhere the source
  // tree is visible: BGPSDN_LINT_FIXTURE_DIR is <repo>/tests/lint/fixtures.
  std::string repo{BGPSDN_LINT_FIXTURE_DIR};
  for (int up = 0; up < 3; ++up) repo = repo.substr(0, repo.find_last_of('/'));
  const auto corpus = bgpsdn::lint::load_corpus({repo + "/src"});
  ASSERT_GT(corpus.size(), 50u);
  EXPECT_EQ(bgpsdn::lint::analyze_include_graph(corpus, test_layers()),
            std::vector<Finding>{});
}

TEST(LintA1, DotExportListsRanksAndEdges) {
  const std::vector<CorpusFile> files = {
      {"src/bgp/probe.hpp", "#pragma once\n#include \"core/event_loop.hpp\"\n"
                            "#include \"core/duration.hpp\"\n"},
  };
  const std::string dot =
      bgpsdn::lint::include_graph_dot(files, test_layers());
  EXPECT_NE(dot.find("digraph bgpsdn_includes"), std::string::npos);
  EXPECT_NE(dot.find("\"bgp\" [label=\"bgp\\nrank 3\"]"), std::string::npos);
  EXPECT_NE(dot.find("\"bgp\" -> \"core\" [label=\"2\"]"), std::string::npos);
}

// --- baseline (bgpsdn.lint/2) -----------------------------------------------

TEST(LintBaseline, RoundTripAndFiltering) {
  auto findings = bgpsdn::lint::lint_file(fixture("d1_violation.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  for (Finding& f : findings) f.reason = "fixture exercises the rule";

  const std::string doc = bgpsdn::lint::findings_to_json(findings);
  bgpsdn::lint::Baseline baseline;
  std::string err;
  ASSERT_TRUE(bgpsdn::lint::parse_baseline(doc, baseline, &err)) << err;
  ASSERT_EQ(baseline.entries.size(), 1u);
  EXPECT_EQ(baseline.entries[0].reason, "fixture exercises the rule");

  // Every current finding is baselined → gate passes, nothing stale.
  const auto current = bgpsdn::lint::lint_file(fixture("d1_violation.cpp"));
  const auto filtered = bgpsdn::lint::apply_baseline(current, baseline);
  EXPECT_EQ(filtered.fresh, std::vector<Finding>{});
  EXPECT_EQ(filtered.baselined, 1u);
  EXPECT_EQ(filtered.stale, std::vector<Finding>{});
  EXPECT_EQ(bgpsdn::lint::exit_code_for(filtered.fresh), 0);

  // A fresh violation elsewhere is not covered by the baseline.
  auto more = current;
  more.push_back({"other.cpp", 3, "D2", "rand()", "msg", ""});
  const auto filtered2 = bgpsdn::lint::apply_baseline(more, baseline);
  ASSERT_EQ(filtered2.fresh.size(), 1u);
  EXPECT_EQ(filtered2.fresh[0].file, "other.cpp");
  EXPECT_EQ(bgpsdn::lint::exit_code_for(filtered2.fresh), 1);
}

TEST(LintBaseline, StaleWaiversAreReported) {
  bgpsdn::lint::Baseline baseline;
  std::string err;
  ASSERT_TRUE(bgpsdn::lint::parse_baseline(
      R"json({"schema":"bgpsdn.lint/2","findings":[{"file":"gone.cpp",)json"
      R"json("line":9,"rule":"D1","token":"time()","message":"m",)json"
      R"json("reason":"code was deleted"}]})json",
      baseline, &err))
      << err;
  const auto filtered = bgpsdn::lint::apply_baseline({}, baseline);
  EXPECT_EQ(filtered.fresh, std::vector<Finding>{});
  ASSERT_EQ(filtered.stale.size(), 1u);
  EXPECT_EQ(filtered.stale[0].file, "gone.cpp");
}

TEST(LintBaseline, V1SchemaRejectedWithMigrationDiagnostic) {
  bgpsdn::lint::Baseline b;
  std::string err;
  EXPECT_FALSE(bgpsdn::lint::parse_baseline(
      R"({"schema":"bgpsdn.lint/1","findings":[]})", b, &err));
  EXPECT_EQ(err,
            "baseline schema bgpsdn.lint/1 is no longer supported: every "
            "waiver now requires a reason; migrate to bgpsdn.lint/2 by "
            "adding a \"reason\" to each entry, or regenerate with "
            "--write-baseline");
}

TEST(LintBaseline, EntryWithoutReasonRejectedWithExactDiagnostic) {
  bgpsdn::lint::Baseline b;
  std::string err;
  EXPECT_FALSE(bgpsdn::lint::parse_baseline(
      R"json({"schema":"bgpsdn.lint/2","findings":[{"file":"x.cpp",)json"
      R"json("line":3,"rule":"D2","token":"rand()","message":"m"}]})json",
      b, &err));
  EXPECT_EQ(err,
            "baseline waiver x.cpp:3 [D2] has no reason; every waiver must "
            "document why it is tolerated");
}

TEST(LintBaseline, MalformedDocumentsRejected) {
  bgpsdn::lint::Baseline b;
  EXPECT_FALSE(bgpsdn::lint::parse_baseline("not json", b));
  EXPECT_FALSE(bgpsdn::lint::parse_baseline("{}", b));
  EXPECT_FALSE(bgpsdn::lint::parse_baseline(
      R"({"schema":"bgpsdn.lint/3","findings":[]})", b));
  EXPECT_TRUE(bgpsdn::lint::parse_baseline(
      R"({"schema":"bgpsdn.lint/2","findings":[]})", b));
  EXPECT_TRUE(b.entries.empty());
}

TEST(LintBaseline, CommittedRepoBaselineParsesUnderV2) {
  // The committed lint_baseline.json must stay valid: schema v2 and a
  // documented reason on every entry.
  std::string repo{BGPSDN_LINT_FIXTURE_DIR};
  for (int up = 0; up < 3; ++up) repo = repo.substr(0, repo.find_last_of('/'));
  std::ifstream in{repo + "/lint_baseline.json", std::ios::binary};
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  bgpsdn::lint::Baseline baseline;
  std::string err;
  ASSERT_TRUE(bgpsdn::lint::parse_baseline(ss.str(), baseline, &err)) << err;
  for (const Finding& f : baseline.entries) {
    EXPECT_FALSE(f.reason.empty()) << f.file << ":" << f.line;
  }
}

TEST(LintIO, UnreadableFileIsAnIoFinding) {
  const auto findings =
      bgpsdn::lint::lint_file(fixture("does_not_exist.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "IO");
}

}  // namespace
