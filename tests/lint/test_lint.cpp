// Tests for the bgpsdn_lint analyzer: exact rule IDs, line numbers, and
// exit codes over the fixture corpus in tests/lint/fixtures/, plus the
// baseline round-trip and the pragma-reason contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

using bgpsdn::lint::Finding;

std::string fixture(const std::string& name) {
  return std::string{BGPSDN_LINT_FIXTURE_DIR} + "/" + name;
}

// (rule, line) pairs in the analyzer's sorted order.
std::vector<std::pair<std::string, int>> rule_lines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

using RL = std::vector<std::pair<std::string, int>>;

TEST(LintD1, FlagsWallClockWithExactLine) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d1_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D1", 5}}));
  EXPECT_EQ(findings[0].token, "steady_clock");
  EXPECT_EQ(bgpsdn::lint::exit_code_for(findings), 1);
}

TEST(LintD1, ReasonedPragmaSuppresses) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d1_suppressed.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
  EXPECT_EQ(bgpsdn::lint::exit_code_for(findings), 0);
}

TEST(LintP1, PragmaWithoutReasonFailsAndDoesNotSuppress) {
  const auto findings =
      bgpsdn::lint::lint_file(fixture("d1_pragma_noreason.cpp"));
  // The D1 site stays live AND the bare pragma is itself a finding.
  EXPECT_EQ(rule_lines(findings), (RL{{"P1", 6}, {"D1", 7}}));
  EXPECT_EQ(bgpsdn::lint::exit_code_for(findings), 1);
}

TEST(LintP1, UnknownTagIsFlagged) {
  const auto findings = bgpsdn::lint::lint_text(
      "probe.cpp", "int x = 0;  // lint: wallclock-okay(typo tag)\n");
  EXPECT_EQ(rule_lines(findings), (RL{{"P1", 1}}));
  EXPECT_EQ(findings[0].token, "wallclock-okay");
}

TEST(LintD2, FlagsAmbientRandomnessWithExactLines) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d2_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D2", 6}, {"D2", 7}, {"D2", 8}}));
  EXPECT_EQ(findings[0].token, "random_device");
  EXPECT_EQ(findings[1].token, "mt19937_64 unseeded");
  EXPECT_EQ(findings[2].token, "rand()");
}

TEST(LintD2, SeededEngineIsClean) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d2_clean.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD3, FlagsUnorderedIterationInEmitter) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d3_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D3", 9}}));
  EXPECT_EQ(findings[0].token, "table");
}

TEST(LintD3, ReasonedPragmaSuppresses) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d3_suppressed.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD3, DoesNotApplyOutsideEmitterPaths) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d3_nonemitter.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintD3, CompanionHeaderDeclarationsAreVisible) {
  // rows_ is declared unordered in companion_emit.hpp via a using-alias;
  // linting the .cpp must resolve it, mirroring metrics.cpp/metrics.hpp.
  const auto findings =
      bgpsdn::lint::lint_file(fixture("companion_emit.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D3", 9}}));
  EXPECT_EQ(findings[0].token, "rows_");
}

TEST(LintD3, SwitchGraphChangelogIsEmitterPath) {
  // controller/switch_graph.hpp carries the edge-delta changelog, whose
  // append order is part of the deterministic output contract.
  const auto findings = bgpsdn::lint::lint_file(fixture("d3_changelog.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D3", 10}}));
  EXPECT_EQ(findings[0].token, "dirty");
}

TEST(LintD3, EmitterStatusInheritedFromCompanionHeader) {
  // The emitter include lives in changelog_companion.hpp; linting the .cpp
  // must still classify it, mirroring as_topology.cpp/as_topology.hpp.
  const auto findings =
      bgpsdn::lint::lint_file(fixture("changelog_companion.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"D3", 8}}));
  EXPECT_EQ(findings[0].token, "prefixes_");
}

TEST(LintT1, FlagsRawThreadingWithExactLines) {
  const auto findings = bgpsdn::lint::lint_file(fixture("t1_violation.cpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"T1", 6}, {"T1", 7}, {"T1", 8}}));
  EXPECT_EQ(findings[0].token, "std::atomic");
  EXPECT_EQ(findings[1].token, "std::thread");
  EXPECT_EQ(findings[2].token, "detach()");
}

TEST(LintT1, TrialRunnerFilesAreAllowlisted) {
  const auto findings = bgpsdn::lint::lint_text(
      "src/framework/trial.cpp",
      "#include <thread>\nvoid f() { std::thread t{[] {}}; t.join(); }\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintH1, MissingPragmaOnce) {
  const auto findings =
      bgpsdn::lint::lint_file(fixture("h1_missing_once.hpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"H1", 1}}));
  EXPECT_EQ(findings[0].token, "#pragma once");
}

TEST(LintH1, UsingNamespaceInHeader) {
  const auto findings =
      bgpsdn::lint::lint_file(fixture("h1_using_namespace.hpp"));
  EXPECT_EQ(rule_lines(findings), (RL{{"H1", 6}}));
  EXPECT_EQ(findings[0].token, "using namespace");
}

TEST(LintH1, IostreamInLibraryHeader) {
  const auto findings = bgpsdn::lint::lint_text(
      "src/fake/widget.hpp",
      "#pragma once\n#include <iostream>\ninline int x() { return 1; }\n");
  EXPECT_EQ(rule_lines(findings), (RL{{"H1", 2}}));
  EXPECT_EQ(findings[0].token, "<iostream>");
}

TEST(LintH1, IostreamOutsideSrcIsTolerated) {
  const auto findings = bgpsdn::lint::lint_text(
      "bench/bench_probe.hpp",
      "#pragma once\n#include <iostream>\ninline int x() { return 1; }\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintClean, FullyCleanFileHasNoFindingsAndExitZero) {
  const auto findings = bgpsdn::lint::lint_file(fixture("clean.cpp"));
  EXPECT_EQ(findings, std::vector<Finding>{});
  EXPECT_EQ(bgpsdn::lint::exit_code_for(findings), 0);
}

TEST(LintScan, StringsAndCommentsNeverMatch) {
  const auto findings = bgpsdn::lint::lint_text(
      "probe.cpp",
      "// steady_clock in a comment is fine\n"
      "/* std::thread in a block comment too */\n"
      "const char* s = \"system_clock rand() std::atomic\";\n"
      "const char* r = R\"(random_device)\";\n"
      "int million = 1'000'000;\n");
  EXPECT_EQ(findings, std::vector<Finding>{});
}

TEST(LintCorpus, WholeFixtureDirectoryExactFindings) {
  const auto findings =
      bgpsdn::lint::lint_paths({std::string{BGPSDN_LINT_FIXTURE_DIR}});
  // Sorted by (file, line, rule, token); one row per expected finding.
  std::vector<std::pair<std::string, std::string>> got;
  got.reserve(findings.size());
  for (const Finding& f : findings) {
    const std::size_t slash = f.file.find_last_of('/');
    got.emplace_back(f.file.substr(slash + 1),
                     f.rule + "@" + std::to_string(f.line));
  }
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"changelog_companion.cpp", "D3@8"},
      {"companion_emit.cpp", "D3@9"},
      {"d1_pragma_noreason.cpp", "P1@6"},
      {"d1_pragma_noreason.cpp", "D1@7"},
      {"d1_violation.cpp", "D1@5"},
      {"d2_violation.cpp", "D2@6"},
      {"d2_violation.cpp", "D2@7"},
      {"d2_violation.cpp", "D2@8"},
      {"d3_changelog.cpp", "D3@10"},
      {"d3_violation.cpp", "D3@9"},
      {"h1_missing_once.hpp", "H1@1"},
      {"h1_using_namespace.hpp", "H1@6"},
      {"t1_violation.cpp", "T1@6"},
      {"t1_violation.cpp", "T1@7"},
      {"t1_violation.cpp", "T1@8"},
  };
  EXPECT_EQ(got, expected);
}

TEST(LintBaseline, RoundTripAndFiltering) {
  const auto findings = bgpsdn::lint::lint_file(fixture("d1_violation.cpp"));
  ASSERT_EQ(findings.size(), 1u);

  const std::string doc = bgpsdn::lint::findings_to_json(findings);
  bgpsdn::lint::Baseline baseline;
  ASSERT_TRUE(bgpsdn::lint::parse_baseline(doc, baseline));
  ASSERT_EQ(baseline.entries.size(), 1u);

  // Every current finding is baselined → gate passes.
  const auto filtered = bgpsdn::lint::apply_baseline(findings, baseline);
  EXPECT_EQ(filtered.fresh, std::vector<Finding>{});
  EXPECT_EQ(filtered.baselined, 1u);
  EXPECT_EQ(bgpsdn::lint::exit_code_for(filtered.fresh), 0);

  // A fresh violation elsewhere is not covered by the baseline.
  auto more = findings;
  more.push_back({"other.cpp", 3, "D2", "rand()", "msg"});
  const auto filtered2 = bgpsdn::lint::apply_baseline(more, baseline);
  ASSERT_EQ(filtered2.fresh.size(), 1u);
  EXPECT_EQ(filtered2.fresh[0].file, "other.cpp");
  EXPECT_EQ(bgpsdn::lint::exit_code_for(filtered2.fresh), 1);
}

TEST(LintBaseline, MalformedDocumentsRejected) {
  bgpsdn::lint::Baseline b;
  EXPECT_FALSE(bgpsdn::lint::parse_baseline("not json", b));
  EXPECT_FALSE(bgpsdn::lint::parse_baseline("{}", b));
  EXPECT_FALSE(bgpsdn::lint::parse_baseline(
      R"({"schema":"bgpsdn.lint/2","findings":[]})", b));
  EXPECT_TRUE(bgpsdn::lint::parse_baseline(
      R"({"schema":"bgpsdn.lint/1","findings":[]})", b));
  EXPECT_TRUE(b.entries.empty());
}

TEST(LintIO, UnreadableFileIsAnIoFinding) {
  const auto findings =
      bgpsdn::lint::lint_file(fixture("does_not_exist.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "IO");
}

}  // namespace
