// ClusterBgpSpeaker tests: relayed-session establishment with the cluster
// AS identity, listener callbacks, announcement dedup, resets.
//
// The speaker peers with a real BgpRouter over a direct link (the border
// switch relay is transparent, so a direct wire exercises the same code).
#include <gtest/gtest.h>

#include "bgp/router.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"
#include "net/network.hpp"
#include "speaker/cluster_speaker.hpp"

namespace bgpsdn::speaker {
namespace {

class RecordingListener : public SpeakerListener {
 public:
  void on_peer_established(const Peering& p) override { ups.push_back(p.id); }
  void on_peer_down(const Peering& p, const std::string& reason) override {
    downs.push_back({p.id, reason});
  }
  void on_route_update(const Peering& p, const bgp::UpdateMessage& u) override {
    updates.push_back({p.id, u});
  }
  std::vector<PeeringId> ups;
  std::vector<std::pair<PeeringId, std::string>> downs;
  std::vector<std::pair<PeeringId, bgp::UpdateMessage>> updates;
};

class SpeakerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    log.set_min_level(core::LogLevel::kInfo);
    speaker = &net.add<ClusterBgpSpeaker>("spk", quick_timers());
    speaker->set_listener(&listener);

    bgp::RouterConfig rc;
    rc.asn = core::AsNumber{100};
    rc.router_id = net::Ipv4Addr{10, 0, 0, 100};
    rc.timers = quick_timers();
    router = &net.add<bgp::BgpRouter>("AS100", rc);

    link = net.connect(speaker->id(), router->id(),
                       {core::Duration::millis(2), 0, 0.0});
    const auto& l = net.link(link);

    Peering peering;
    peering.cluster_as = core::AsNumber{7};  // the member AS this session represents
    peering.border_dpid = 42;
    peering.switch_external_port = core::PortId{3};
    peering.local_address = net::Ipv4Addr{172, 16, 0, 1};
    peering.remote_address = net::Ipv4Addr{172, 16, 0, 2};
    peering.expected_peer_as = core::AsNumber{100};
    pid = speaker->add_peering(l.a.port, peering);

    bgp::PeerConfig pc;
    pc.local_address = net::Ipv4Addr{172, 16, 0, 2};
    pc.remote_address = net::Ipv4Addr{172, 16, 0, 1};
    pc.expected_peer_as = core::AsNumber{7};
    router->add_peer(l.b.port, pc);
  }

  static bgp::Timers quick_timers() {
    bgp::Timers t;
    t.mrai = core::Duration::millis(100);
    t.hold = core::Duration::seconds(9);
    t.keepalive = core::Duration::seconds(3);
    return t;
  }

  void establish() {
    net.start_all();
    loop.run(loop.now() + core::Duration::seconds(3));
    ASSERT_TRUE(speaker->peering_established(pid));
  }

  bgp::PathAttributes attrs(std::vector<std::uint32_t> path) {
    bgp::PathAttributes a;
    std::vector<core::AsNumber> hops;
    for (const auto as : path) hops.emplace_back(as);
    a.as_path = bgp::AsPath{std::move(hops)};
    a.next_hop = net::Ipv4Addr{172, 16, 0, 1};
    return a;
  }

  core::EventLoop loop;
  core::Logger log;
  core::Rng rng{1};
  net::Network net{loop, log, rng};
  ClusterBgpSpeaker* speaker{};
  bgp::BgpRouter* router{};
  RecordingListener listener;
  core::LinkId link;
  PeeringId pid{};
};

TEST_F(SpeakerTest, EstablishesWithClusterAsIdentity) {
  establish();
  ASSERT_EQ(listener.ups.size(), 1u);
  EXPECT_EQ(listener.ups[0], pid);
  // The legacy router believes it peers with AS7 — the cluster member.
  ASSERT_EQ(router->sessions().size(), 1u);
  EXPECT_EQ(router->sessions()[0]->peer_as().value(), 7u);
}

TEST_F(SpeakerTest, RoutesFromLegacyReachListener) {
  router->originate(*net::Prefix::parse("10.100.0.0/16"));
  establish();
  loop.run(loop.now() + core::Duration::seconds(2));
  ASSERT_GE(listener.updates.size(), 1u);
  const auto& [id, update] = listener.updates.front();
  EXPECT_EQ(id, pid);
  ASSERT_EQ(update.nlri.size(), 1u);
  EXPECT_EQ(update.nlri[0].to_string(), "10.100.0.0/16");
  EXPECT_EQ(update.attributes.as_path.to_string(), "100");
}

TEST_F(SpeakerTest, AnnouncePropagatesToLegacyRouter) {
  establish();
  const auto pfx = *net::Prefix::parse("10.7.0.0/16");
  speaker->announce(pid, pfx, attrs({7}));
  loop.run(loop.now() + core::Duration::seconds(2));
  const bgp::Route* r = router->loc_rib().find(pfx);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->attributes->as_path.to_string(), "7");
}

TEST_F(SpeakerTest, DuplicateAnnouncementsSuppressed) {
  establish();
  const auto pfx = *net::Prefix::parse("10.7.0.0/16");
  speaker->announce(pid, pfx, attrs({7}));
  speaker->announce(pid, pfx, attrs({7}));
  speaker->announce(pid, pfx, attrs({7}));
  EXPECT_EQ(speaker->counters().announces_tx, 1u);
  // A changed path does go out.
  speaker->announce(pid, pfx, attrs({7, 9}));
  EXPECT_EQ(speaker->counters().announces_tx, 2u);
}

TEST_F(SpeakerTest, WithdrawOnlyAfterAdvertise) {
  establish();
  const auto pfx = *net::Prefix::parse("10.7.0.0/16");
  speaker->withdraw(pid, pfx);  // nothing advertised yet
  EXPECT_EQ(speaker->counters().withdraws_tx, 0u);
  speaker->announce(pid, pfx, attrs({7}));
  speaker->withdraw(pid, pfx);
  EXPECT_EQ(speaker->counters().withdraws_tx, 1u);
  loop.run(loop.now() + core::Duration::seconds(2));
  EXPECT_EQ(router->loc_rib().find(pfx), nullptr);
}

TEST_F(SpeakerTest, AnnounceIgnoredWhenDown) {
  // Never started: session idle.
  speaker->announce(pid, *net::Prefix::parse("10.7.0.0/16"), attrs({7}));
  EXPECT_EQ(speaker->counters().announces_tx, 0u);
}

TEST_F(SpeakerTest, ResetTearsDownAndRecovers) {
  establish();
  speaker->reset_peering(pid, "border port down");
  EXPECT_EQ(speaker->counters().resets, 1u);
  ASSERT_EQ(listener.downs.size(), 1u);
  EXPECT_EQ(listener.downs[0].second, "border port down");
  EXPECT_FALSE(speaker->peering_established(pid));
  // Auto-restart (speaker side) plus the peer's passive open re-establish.
  loop.run(loop.now() + core::Duration::seconds(20));
  EXPECT_TRUE(speaker->peering_established(pid));
  EXPECT_GE(listener.ups.size(), 2u);
}

TEST_F(SpeakerTest, RibOutClearedOnReset) {
  establish();
  const auto pfx = *net::Prefix::parse("10.7.0.0/16");
  speaker->announce(pid, pfx, attrs({7}));
  EXPECT_EQ(speaker->counters().announces_tx, 1u);
  speaker->reset_peering(pid, "reset");
  loop.run(loop.now() + core::Duration::seconds(20));
  ASSERT_TRUE(speaker->peering_established(pid));
  // After the reset the same announcement is fresh again (not deduped).
  speaker->announce(pid, pfx, attrs({7}));
  EXPECT_EQ(speaker->counters().announces_tx, 2u);
}

TEST_F(SpeakerTest, LinkFailureDropsSession) {
  establish();
  net.set_link_up(link, false);
  EXPECT_FALSE(speaker->peering_established(pid));
  ASSERT_EQ(listener.downs.size(), 1u);
  net.set_link_up(link, true);
  loop.run(loop.now() + core::Duration::seconds(10));
  EXPECT_TRUE(speaker->peering_established(pid));
}

TEST_F(SpeakerTest, PeeringAccessors) {
  ASSERT_NE(speaker->peering(pid), nullptr);
  EXPECT_EQ(speaker->peering(pid)->cluster_as.value(), 7u);
  EXPECT_EQ(speaker->peering(pid)->border_dpid, 42u);
  EXPECT_EQ(speaker->peering(999), nullptr);
  EXPECT_EQ(speaker->peerings().size(), 1u);
}

}  // namespace
}  // namespace bgpsdn::speaker
