// Tests of the copy-on-write payload buffer (net/bytes.hpp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/bytes.hpp"

namespace bgpsdn::net {
namespace {

std::vector<std::byte> seq(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i);
  return v;
}

TEST(Bytes, DefaultIsEmpty) {
  Bytes b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_TRUE(b.vec().empty());
}

TEST(Bytes, CopyIsShallowShare) {
  Bytes a{seq(64)};
  Bytes b = a;
  EXPECT_TRUE(a.is_shared());
  EXPECT_TRUE(b.is_shared());
  EXPECT_EQ(a.data(), b.data());  // one buffer
  EXPECT_EQ(a, b);
}

TEST(Bytes, MutateUnsharesBeforeWriting) {
  Bytes a{seq(16)};
  Bytes b = a;
  b.mutate()[0] = std::byte{0xff};
  EXPECT_EQ(a[0], std::byte{0});    // original untouched
  EXPECT_EQ(b[0], std::byte{0xff});
  EXPECT_NE(a.data(), b.data());
  EXPECT_FALSE(a.is_shared());
}

TEST(Bytes, MutateOnSoleOwnerWritesInPlace) {
  Bytes a{seq(16)};
  const auto* before = a.data();
  a.mutate()[3] = std::byte{9};
  EXPECT_EQ(a.data(), before);
  EXPECT_EQ(a[3], std::byte{9});
}

TEST(Bytes, AdoptSharesExternalBuffer) {
  auto buf = std::make_shared<std::vector<std::byte>>(seq(8));
  Bytes a = Bytes::adopt(buf);
  Bytes b = Bytes::adopt(buf);
  EXPECT_EQ(a.data(), buf->data());
  EXPECT_EQ(a.data(), b.data());
  EXPECT_TRUE(a.is_shared());
}

TEST(Bytes, ComparesByContent) {
  Bytes a{seq(8)};
  Bytes b{seq(8)};  // distinct buffer, same content
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a == seq(8));
  EXPECT_FALSE(a == seq(9));
}

TEST(Bytes, ImplicitVectorViewMatchesContent) {
  Bytes a{seq(8)};
  const std::vector<std::byte>& view = a;
  EXPECT_EQ(view, seq(8));
}

}  // namespace
}  // namespace bgpsdn::net
