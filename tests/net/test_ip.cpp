#include <gtest/gtest.h>

#include "net/ip.hpp"

namespace bgpsdn::net {
namespace {

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("192.168.1.42");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->bits(), 0xc0a8012au);
  EXPECT_EQ(a->to_string(), "192.168.1.42");
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->bits(), 0xffffffffu);
}

TEST(Ipv4Addr, ParseInvalid) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..3.4").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("-1.2.3.4").has_value());
}

TEST(Ipv4Addr, OctetConstructorAndOrdering) {
  const Ipv4Addr a{10, 0, 0, 1};
  const Ipv4Addr b{10, 0, 0, 2};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.to_string(), "10.0.0.1");
  EXPECT_TRUE(Ipv4Addr{}.is_unspecified());
  EXPECT_FALSE(a.is_unspecified());
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p{Ipv4Addr{10, 1, 2, 3}, 16};
  EXPECT_EQ(p.network().to_string(), "10.1.0.0");
  EXPECT_EQ(p.length(), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, ParseValid) {
  const auto p = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 8);
  EXPECT_EQ(Prefix::parse("1.2.3.4/32")->network().to_string(), "1.2.3.4");
  EXPECT_EQ(Prefix::parse("0.0.0.0/0")->length(), 0);
  // Host bits are masked on parse.
  EXPECT_EQ(Prefix::parse("10.1.2.3/16")->to_string(), "10.1.0.0/16");
}

TEST(Prefix, ParseInvalid) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/x").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0/8").has_value());
  EXPECT_FALSE(Prefix::parse("/8").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/8/9").has_value());
}

TEST(Prefix, ContainsAddress) {
  const auto p = *Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("10.1.0.1")));
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("10.1.255.255")));
  EXPECT_FALSE(p.contains(*Ipv4Addr::parse("10.2.0.0")));
  const auto all = *Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(*Ipv4Addr::parse("255.1.2.3")));
}

TEST(Prefix, ContainsPrefix) {
  const auto p16 = *Prefix::parse("10.1.0.0/16");
  const auto p24 = *Prefix::parse("10.1.5.0/24");
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
  EXPECT_FALSE(p16.contains(*Prefix::parse("10.2.0.0/24")));
}

TEST(Prefix, Overlaps) {
  const auto a = *Prefix::parse("10.0.0.0/8");
  const auto b = *Prefix::parse("10.5.0.0/16");
  const auto c = *Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Prefix, Netmask) {
  EXPECT_EQ(Prefix::parse("10.0.0.0/8")->netmask().to_string(), "255.0.0.0");
  EXPECT_EQ(Prefix::parse("10.0.0.0/30")->netmask().to_string(),
            "255.255.255.252");
  EXPECT_EQ(Prefix::parse("0.0.0.0/0")->netmask().to_string(), "0.0.0.0");
  EXPECT_EQ(Prefix::parse("1.1.1.1/32")->netmask().to_string(),
            "255.255.255.255");
}

TEST(Prefix, Split) {
  const auto p = *Prefix::parse("10.0.0.0/8");
  const auto [lo, hi] = p.split();
  EXPECT_EQ(lo.to_string(), "10.0.0.0/9");
  EXPECT_EQ(hi.to_string(), "10.128.0.0/9");
  EXPECT_TRUE(p.contains(lo));
  EXPECT_TRUE(p.contains(hi));
  EXPECT_FALSE(lo.overlaps(hi));
}

TEST(Prefix, AddressAt) {
  const auto p = *Prefix::parse("10.1.0.0/16");
  EXPECT_EQ(p.address_at(0).to_string(), "10.1.0.0");
  EXPECT_EQ(p.address_at(1).to_string(), "10.1.0.1");
  EXPECT_EQ(p.address_at(256).to_string(), "10.1.1.0");
}

TEST(Prefix, OrderingAndHash) {
  const auto a = *Prefix::parse("10.0.0.0/8");
  const auto b = *Prefix::parse("10.0.0.0/16");
  EXPECT_NE(a, b);
  EXPECT_NE(std::hash<Prefix>{}(a), std::hash<Prefix>{}(b));
}

}  // namespace
}  // namespace bgpsdn::net
