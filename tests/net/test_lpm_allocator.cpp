#include <gtest/gtest.h>

#include "net/address_allocator.hpp"
#include "net/lpm.hpp"

namespace bgpsdn::net {
namespace {

TEST(LpmTable, LongestPrefixWins) {
  LpmTable<int> t;
  t.insert(*Prefix::parse("10.0.0.0/8"), 8);
  t.insert(*Prefix::parse("10.1.0.0/16"), 16);
  t.insert(*Prefix::parse("10.1.2.0/24"), 24);

  const auto hit = t.lookup(*Ipv4Addr::parse("10.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 24);
  EXPECT_EQ(hit->first.to_string(), "10.1.2.0/24");

  EXPECT_EQ(*t.lookup(*Ipv4Addr::parse("10.1.9.1"))->second, 16);
  EXPECT_EQ(*t.lookup(*Ipv4Addr::parse("10.9.9.9"))->second, 8);
  EXPECT_FALSE(t.lookup(*Ipv4Addr::parse("11.0.0.1")).has_value());
}

TEST(LpmTable, DefaultRouteCatchesAll) {
  LpmTable<int> t;
  t.insert(Prefix::default_route(), 0);
  EXPECT_EQ(*t.lookup(*Ipv4Addr::parse("203.0.113.5"))->second, 0);
}

TEST(LpmTable, InsertReplaces) {
  LpmTable<int> t;
  const auto p = *Prefix::parse("10.0.0.0/8");
  t.insert(p, 1);
  t.insert(p, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find_exact(p), 2);
}

TEST(LpmTable, EraseAndEmpty) {
  LpmTable<int> t;
  const auto p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(t.empty());
  t.insert(p, 1);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(t.erase(p));
  EXPECT_FALSE(t.erase(p));
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.lookup(*Ipv4Addr::parse("10.0.0.1")).has_value());
}

TEST(LpmTable, ExactFindDistinguishesLengths) {
  LpmTable<int> t;
  t.insert(*Prefix::parse("10.0.0.0/8"), 8);
  EXPECT_EQ(t.find_exact(*Prefix::parse("10.0.0.0/16")), nullptr);
  EXPECT_NE(t.find_exact(*Prefix::parse("10.0.0.0/8")), nullptr);
}

TEST(LpmTable, EntriesEnumeration) {
  LpmTable<int> t;
  t.insert(*Prefix::parse("10.0.0.0/8"), 1);
  t.insert(*Prefix::parse("192.168.0.0/16"), 2);
  const auto all = t.entries();
  EXPECT_EQ(all.size(), 2u);
}

TEST(LpmTable, HostRoute) {
  LpmTable<int> t;
  t.insert(*Prefix::parse("10.0.0.5/32"), 32);
  t.insert(*Prefix::parse("10.0.0.0/8"), 8);
  EXPECT_EQ(*t.lookup(*Ipv4Addr::parse("10.0.0.5"))->second, 32);
  EXPECT_EQ(*t.lookup(*Ipv4Addr::parse("10.0.0.6"))->second, 8);
}

TEST(AddressAllocator, StableAsPrefixes) {
  AddressAllocator alloc;
  const auto p1 = alloc.as_prefix(core::AsNumber{7});
  const auto p2 = alloc.as_prefix(core::AsNumber{9});
  EXPECT_EQ(p1, alloc.as_prefix(core::AsNumber{7}));  // stable
  EXPECT_NE(p1, p2);
  EXPECT_FALSE(p1.overlaps(p2));
  EXPECT_EQ(p1.length(), 16);
  EXPECT_EQ(p1.to_string(), "10.0.0.0/16");
  EXPECT_EQ(p2.to_string(), "10.1.0.0/16");
}

TEST(AddressAllocator, RouterAndHostAddresses) {
  AddressAllocator alloc;
  const core::AsNumber as{5};
  const auto rid = alloc.router_id(as);
  EXPECT_TRUE(alloc.as_prefix(as).contains(rid));
  EXPECT_EQ(rid, alloc.as_prefix(as).address_at(1));
  const auto h0 = alloc.host_address(as, 0);
  const auto h1 = alloc.host_address(as, 1);
  EXPECT_NE(h0, rid);
  EXPECT_NE(h0, h1);
  EXPECT_TRUE(alloc.as_prefix(as).contains(h0));
}

TEST(AddressAllocator, P2pSubnetsDisjoint) {
  AddressAllocator alloc;
  const auto a = alloc.next_p2p();
  const auto b = alloc.next_p2p();
  EXPECT_FALSE(a.subnet.overlaps(b.subnet));
  EXPECT_EQ(a.subnet.length(), 30);
  EXPECT_TRUE(a.subnet.contains(a.left));
  EXPECT_TRUE(a.subnet.contains(a.right));
  EXPECT_NE(a.left, a.right);
  // P2P space must not collide with AS space.
  EXPECT_FALSE(a.subnet.overlaps(alloc.as_prefix(core::AsNumber{1})));
}

TEST(AddressAllocator, ManyAses) {
  AddressAllocator alloc;
  for (std::uint32_t i = 1; i <= 300; ++i) {
    const auto p = alloc.as_prefix(core::AsNumber{i});
    EXPECT_GE(p.length(), 16);
  }
  EXPECT_EQ(alloc.allocated_as_count(), 300u);
}

}  // namespace
}  // namespace bgpsdn::net
