#include <gtest/gtest.h>

#include <bit>
#include <limits>

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"
#include "net/host.hpp"
#include "net/network.hpp"

namespace bgpsdn::net {
namespace {

/// Records everything it receives.
class SinkNode : public Node {
 public:
  void handle_packet(core::PortId ingress, const Packet& packet) override {
    received.push_back({ingress, packet});
  }
  void on_link_state(core::PortId port, bool up) override {
    link_events.push_back({port, up});
  }
  std::vector<std::pair<core::PortId, Packet>> received;
  std::vector<std::pair<core::PortId, bool>> link_events;
};

class NetworkTest : public ::testing::Test {
 protected:
  core::EventLoop loop;
  core::Logger log;
  core::Rng rng{1};
  Network net{loop, log, rng};
};

TEST_F(NetworkTest, DeliversWithLinkDelay) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  net.connect(a.id(), b.id(), {core::Duration::millis(10), 0, 0.0});

  Packet p;
  p.dst = Ipv4Addr{1, 2, 3, 4};
  net.send(a.id(), core::PortId{0}, p);
  EXPECT_TRUE(b.received.empty());  // nothing before the loop runs
  loop.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(loop.now() - core::TimePoint::origin(), core::Duration::millis(10));
  EXPECT_EQ(b.received[0].first, core::PortId{0});
  EXPECT_EQ(b.received[0].second.dst, (Ipv4Addr{1, 2, 3, 4}));
}

TEST_F(NetworkTest, TtlDecrementsOnDelivery) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  net.connect(a.id(), b.id());
  Packet p;
  p.ttl = 5;
  net.send(a.id(), core::PortId{0}, p);
  loop.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second.ttl, 4);
}

TEST_F(NetworkTest, TtlZeroDropped) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  net.connect(a.id(), b.id());
  Packet p;
  p.ttl = 0;
  net.send(a.id(), core::PortId{0}, p);
  loop.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().dropped_ttl, 1u);
}

TEST_F(NetworkTest, DownLinkDropsAndNotifies) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  const auto link = net.connect(a.id(), b.id());
  net.set_link_up(link, false);
  ASSERT_EQ(a.link_events.size(), 1u);
  EXPECT_FALSE(a.link_events[0].second);
  ASSERT_EQ(b.link_events.size(), 1u);

  net.send(a.id(), core::PortId{0}, Packet{});
  loop.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().dropped_link_down, 1u);

  // Redundant state change produces no extra notifications.
  net.set_link_up(link, false);
  EXPECT_EQ(a.link_events.size(), 1u);

  net.set_link_up(link, true);
  net.send(a.id(), core::PortId{0}, Packet{});
  loop.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, InFlightPacketDroppedByFailure) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  const auto link = net.connect(a.id(), b.id(), {core::Duration::millis(10), 0, 0.0});
  net.send(a.id(), core::PortId{0}, Packet{});
  // Fail the link while the packet is still flying.
  loop.schedule(core::Duration::millis(5), [&] { net.set_link_up(link, false); });
  loop.run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetworkTest, LossyLinkDropsStatistically) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  net.connect(a.id(), b.id(), {core::Duration::millis(1), 0, 0.5});
  for (int i = 0; i < 1000; ++i) net.send(a.id(), core::PortId{0}, Packet{});
  loop.run();
  EXPECT_GT(b.received.size(), 350u);
  EXPECT_LT(b.received.size(), 650u);
  EXPECT_EQ(b.received.size() + net.stats().dropped_loss, 1000u);
}

TEST_F(NetworkTest, BandwidthSerializesBackToBack) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  // 1 Mbit/s; a 20-byte header packet takes 160 us to serialize.
  net.connect(a.id(), b.id(), {core::Duration::zero(), 1'000'000, 0.0});
  net.send(a.id(), core::PortId{0}, Packet{});
  net.send(a.id(), core::PortId{0}, Packet{});
  loop.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(loop.now() - core::TimePoint::origin(), core::Duration::micros(320));
}

TEST_F(NetworkTest, BidirectionalPortsIndependent) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  net.connect(a.id(), b.id());
  net.send(a.id(), core::PortId{0}, Packet{});
  net.send(b.id(), core::PortId{0}, Packet{});
  loop.run();
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, MultipleLinksAllocateSequentialPorts) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  auto& c = net.add<SinkNode>("c");
  net.connect(a.id(), b.id());
  net.connect(a.id(), c.id());
  EXPECT_EQ(net.port_count(a.id()), 2u);
  EXPECT_EQ(net.port_count(b.id()), 1u);

  const auto peer0 = net.peer_of(a.id(), core::PortId{0});
  const auto peer1 = net.peer_of(a.id(), core::PortId{1});
  EXPECT_EQ(peer0.node, b.id());
  EXPECT_EQ(peer1.node, c.id());
}

TEST_F(NetworkTest, FindLinkEitherDirection) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  const auto id = net.connect(a.id(), b.id());
  EXPECT_EQ(net.find_link(a.id(), b.id()), id);
  EXPECT_EQ(net.find_link(b.id(), a.id()), id);
  auto& c = net.add<SinkNode>("c");
  EXPECT_FALSE(net.find_link(a.id(), c.id()).is_valid());
}

TEST_F(NetworkTest, SendOnUnknownPortCounted) {
  auto& a = net.add<SinkNode>("a");
  net.send(a.id(), core::PortId{5}, Packet{});
  loop.run();
  EXPECT_EQ(net.stats().dropped_no_port, 1u);
}

TEST_F(NetworkTest, HostAnswersProbes) {
  auto& h1 = net.add<Host>("h1", Ipv4Addr{10, 0, 0, 1});
  auto& h2 = net.add<Host>("h2", Ipv4Addr{10, 1, 0, 1});
  net.connect(h1.id(), h2.id());
  std::uint64_t got_label = 0;
  h1.set_reply_callback([&](std::uint64_t label) { got_label = label; });
  h1.send_probe(h2.address(), 77);
  loop.run();
  EXPECT_EQ(h2.probes_received(), 1u);
  EXPECT_EQ(h1.replies_received(), 1u);
  EXPECT_EQ(got_label, 77u);
}

TEST_F(NetworkTest, HostIgnoresForeignProbes) {
  auto& h1 = net.add<Host>("h1", Ipv4Addr{10, 0, 0, 1});
  auto& h2 = net.add<Host>("h2", Ipv4Addr{10, 1, 0, 1});
  net.connect(h1.id(), h2.id());
  h1.send_probe(Ipv4Addr{10, 9, 9, 9}, 1);  // not h2's address
  loop.run();
  EXPECT_EQ(h2.probes_received(), 0u);
}

TEST_F(NetworkTest, LinkParamsValidatedAtConnect) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  EXPECT_THROW(net.connect(a.id(), b.id(), {core::Duration::millis(-1), 0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(net.connect(a.id(), b.id(), {core::Duration::zero(), 0, 1.5}),
               std::invalid_argument);
  EXPECT_THROW(net.connect(a.id(), b.id(), {core::Duration::zero(), 0, -0.1}),
               std::invalid_argument);
  EXPECT_THROW(net.connect(a.id(), b.id(),
                           {core::Duration::zero(), 0,
                            std::numeric_limits<double>::quiet_NaN()}),
               std::invalid_argument);
  // Boundary values are legal.
  net.connect(a.id(), b.id(), {core::Duration::zero(), 0, 1.0});
}

TEST_F(NetworkTest, RuntimeLossClampsAndRejectsNaN) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  const auto link = net.connect(a.id(), b.id());
  net.set_link_loss(link, 7.0);  // clamps to 1.0: everything drops
  Packet p;
  net.send(a.id(), core::PortId{0}, p);
  loop.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().dropped_loss, 1u);
  net.set_link_loss(link, -3.0);  // clamps to 0.0: everything delivers
  net.send(a.id(), core::PortId{0}, p);
  loop.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_THROW(net.set_link_loss(link, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(
      net.set_link_corruption(link, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

TEST_F(NetworkTest, CorruptionFlipsPayloadBitsAndCounts) {
  auto& a = net.add<SinkNode>("a");
  auto& b = net.add<SinkNode>("b");
  const auto link = net.connect(a.id(), b.id());
  net.set_link_corruption(link, 1.0);
  Packet p;
  p.payload = std::vector<std::byte>(32, std::byte{0});
  net.send(a.id(), core::PortId{0}, p);
  loop.run();
  ASSERT_EQ(b.received.size(), 1u);
  // Delivered (corruption is not loss), same size, 1-3 bits flipped.
  const auto& got = b.received[0].second.payload;
  ASSERT_EQ(got.size(), p.payload.size());
  int flipped = 0;
  for (const auto byte : got.vec()) flipped += std::popcount(std::to_integer<unsigned>(byte));
  EXPECT_GE(flipped, 1);
  EXPECT_LE(flipped, 3);
  EXPECT_EQ(net.stats().corrupted, 1u);

  // Empty payloads (pure signalling packets) are never corrupted.
  net.send(a.id(), core::PortId{0}, Packet{});
  loop.run();
  EXPECT_EQ(net.stats().corrupted, 1u);
}

}  // namespace
}  // namespace bgpsdn::net
