#include <gtest/gtest.h>

#include <vector>

#include "core/event_loop.hpp"

namespace bgpsdn::core {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(30), [&] { order.push_back(3); });
  loop.schedule(Duration::millis(10), [&] { order.push_back(1); });
  loop.schedule(Duration::millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), TimePoint::origin() + Duration::millis(30));
}

TEST(EventLoop, SimultaneousEventsAreFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  bool ran = false;
  loop.schedule(Duration::millis(-5), [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now(), TimePoint::origin());
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule(Duration::millis(1), [&] { ran = true; });
  EXPECT_TRUE(loop.is_pending(id));
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.is_pending(id));
  EXPECT_FALSE(loop.cancel(id));  // double cancel is a no-op
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelAfterFireIsNoop) {
  EventLoop loop;
  const auto id = loop.schedule(Duration::millis(1), [] {});
  loop.run();
  EXPECT_FALSE(loop.cancel(id));
}

TEST(EventLoop, EventsScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) loop.schedule(Duration::millis(1), chain);
  };
  loop.schedule(Duration::millis(1), chain);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now() - TimePoint::origin(), Duration::millis(5));
}

TEST(EventLoop, RunUntilStopsAtBoundary) {
  EventLoop loop;
  int count = 0;
  loop.schedule(Duration::millis(10), [&] { ++count; });
  loop.schedule(Duration::millis(20), [&] { ++count; });
  loop.run(TimePoint::origin() + Duration::millis(15));
  EXPECT_EQ(count, 1);
  // The later event survives for a subsequent run.
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, EventAtBoundaryRuns) {
  EventLoop loop;
  bool ran = false;
  loop.schedule(Duration::millis(10), [&] { ran = true; });
  loop.run(TimePoint::origin() + Duration::millis(10));
  EXPECT_TRUE(ran);
}

TEST(EventLoop, AdvanceToMovesClockEvenWhenIdle) {
  EventLoop loop;
  loop.advance_to(TimePoint::origin() + Duration::seconds(3));
  EXPECT_EQ(loop.now(), TimePoint::origin() + Duration::seconds(3));
}

TEST(EventLoop, StepExecutesOneEvent) {
  EventLoop loop;
  int count = 0;
  loop.schedule(Duration::millis(1), [&] { ++count; });
  loop.schedule(Duration::millis(2), [&] { ++count; });
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, ScheduleAtPastClampsToNow) {
  EventLoop loop;
  loop.advance_to(TimePoint::origin() + Duration::seconds(10));
  bool ran = false;
  loop.schedule_at(TimePoint::origin() + Duration::seconds(1), [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now(), TimePoint::origin() + Duration::seconds(10));
}

TEST(EventLoop, PendingEventsCount) {
  EventLoop loop;
  EXPECT_EQ(loop.pending_events(), 0u);
  const auto a = loop.schedule(Duration::millis(1), [] {});
  loop.schedule(Duration::millis(2), [] {});
  EXPECT_EQ(loop.pending_events(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.run();
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, ExecutedCounter) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule(Duration::millis(i), [] {});
  loop.run();
  EXPECT_EQ(loop.events_executed(), 7u);
}

TEST(EventLoop, CancelInsideCallback) {
  EventLoop loop;
  bool second_ran = false;
  TimerId second = TimerId::invalid();
  loop.schedule(Duration::millis(1), [&] { loop.cancel(second); });
  second = loop.schedule(Duration::millis(2), [&] { second_ran = true; });
  loop.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoop, CancelOwnTimerInsideCallbackIsNoop) {
  EventLoop loop;
  TimerId self = TimerId::invalid();
  bool cancel_result = true;
  bool later_ran = false;
  self = loop.schedule(Duration::millis(1),
                       [&] { cancel_result = loop.cancel(self); });
  loop.schedule(Duration::millis(2), [&] { later_ran = true; });
  loop.run();
  // By the time the callback runs its timer already fired.
  EXPECT_FALSE(cancel_result);
  EXPECT_TRUE(later_ran);
  EXPECT_EQ(loop.events_executed(), 2u);
}

TEST(EventLoop, CancelSameTimestampSiblingInsideCallback) {
  EventLoop loop;
  bool sibling_ran = false;
  TimerId sibling = TimerId::invalid();
  loop.schedule(Duration::millis(5), [&] { EXPECT_TRUE(loop.cancel(sibling)); });
  sibling = loop.schedule(Duration::millis(5), [&] { sibling_ran = true; });
  loop.run();
  EXPECT_FALSE(sibling_ran);
  EXPECT_EQ(loop.events_executed(), 1u);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, CancelThenRescheduleInsideCallback) {
  EventLoop loop;
  bool original_ran = false;
  bool replacement_ran = false;
  TimerId original = TimerId::invalid();
  loop.schedule(Duration::millis(1), [&] {
    ASSERT_TRUE(loop.cancel(original));
    loop.schedule(Duration::millis(1), [&] { replacement_ran = true; });
  });
  original = loop.schedule(Duration::millis(10), [&] { original_ran = true; });
  loop.run();
  EXPECT_FALSE(original_ran);
  EXPECT_TRUE(replacement_ran);
  EXPECT_EQ(loop.now() - TimePoint::origin(), Duration::millis(2));
}

TEST(EventLoop, PendingAccountingUnderChurn) {
  EventLoop loop;
  std::vector<TimerId> ids;
  int executed = 0;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(
        loop.schedule(Duration::millis(1 + i), [&] { ++executed; }));
  }
  EXPECT_EQ(loop.pending_events(), 50u);
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(loop.cancel(ids[i]));
  }
  EXPECT_EQ(loop.pending_events(), 25u);
  // Cancelling an already-cancelled timer changes nothing.
  EXPECT_FALSE(loop.cancel(ids[0]));
  EXPECT_EQ(loop.pending_events(), 25u);
  loop.run();
  EXPECT_EQ(executed, 25);
  EXPECT_EQ(loop.events_executed(), 25u);
  EXPECT_EQ(loop.pending_events(), 0u);
}

// Regression for the tombstone leak: a long fault/chaos run that keeps
// re-arming and cancelling timers (hold timers reset on every keepalive) must
// not grow the loop's internal structures without bound. One million
// schedule+cancel cycles have to leave both the heap (tombstones awaiting
// compaction) and the slot slab (recycled through the free list) small.
TEST(EventLoop, MillionCancelledTimersStayBounded) {
  EventLoop loop;
  // A long-lived pending timer ensures bounds hold even when something real
  // stays in the queue the whole time (a pinned hold timer).
  bool pinned_ran = false;
  loop.schedule(Duration::seconds(3600), [&] { pinned_ran = true; });
  for (int i = 0; i < 1'000'000; ++i) {
    const auto id = loop.schedule(Duration::seconds(90), [] { FAIL(); });
    ASSERT_TRUE(loop.cancel(id));
  }
  EXPECT_EQ(loop.pending_events(), 1u);
  // Tombstone compaction bounds the heap; slot recycling bounds the slab.
  EXPECT_LE(loop.queued_entries(), 256u);
  EXPECT_LE(loop.slots_allocated(), 256u);
  loop.run();
  EXPECT_TRUE(pinned_ran);
  EXPECT_EQ(loop.events_executed(), 1u);
}

TEST(EventLoop, StaleTimerIdAfterSlotReuseIsNoop) {
  EventLoop loop;
  bool second_ran = false;
  const auto first = loop.schedule(Duration::millis(1), [] {});
  loop.run();
  // The fired timer's slot is recycled for the next schedule; the stale
  // handle must not cancel (or report pending for) the new occupant.
  const auto second = loop.schedule(Duration::millis(1), [&] { second_ran = true; });
  EXPECT_FALSE(loop.is_pending(first));
  EXPECT_FALSE(loop.cancel(first));
  EXPECT_TRUE(loop.is_pending(second));
  loop.run();
  EXPECT_TRUE(second_ran);
}

TEST(EventLoop, StepSkipsCancelledEvents) {
  EventLoop loop;
  bool survivor_ran = false;
  const auto doomed = loop.schedule(Duration::millis(1), [] { FAIL(); });
  loop.schedule(Duration::millis(2), [&] { survivor_ran = true; });
  loop.cancel(doomed);
  // A single step lands on the survivor, not the cancelled tombstone.
  EXPECT_TRUE(loop.step());
  EXPECT_TRUE(survivor_ran);
  EXPECT_FALSE(loop.step());
  EXPECT_EQ(loop.pending_events(), 0u);
}

}  // namespace
}  // namespace bgpsdn::core
