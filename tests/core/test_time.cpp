#include <gtest/gtest.h>

#include "core/time.hpp"

namespace bgpsdn::core {
namespace {

TEST(Duration, FactoryUnits) {
  EXPECT_EQ(Duration::nanos(1).count_nanos(), 1);
  EXPECT_EQ(Duration::micros(1).count_nanos(), 1'000);
  EXPECT_EQ(Duration::millis(1).count_nanos(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).count_nanos(), 1'000'000'000);
  EXPECT_EQ(Duration::seconds_f(0.5).count_nanos(), 500'000'000);
  EXPECT_EQ(Duration::zero().count_nanos(), 0);
}

TEST(Duration, Arithmetic) {
  const auto a = Duration::millis(300);
  const auto b = Duration::millis(200);
  EXPECT_EQ((a + b).count_nanos(), Duration::millis(500).count_nanos());
  EXPECT_EQ((a - b).count_nanos(), Duration::millis(100).count_nanos());
  EXPECT_EQ((b - a).count_nanos(), Duration::millis(-100).count_nanos());
  EXPECT_EQ((a * 3).to_millis(), 900.0);
  EXPECT_EQ((a * 0.5).to_millis(), 150.0);
  EXPECT_EQ((a / 3).count_nanos(), 100'000'000);
  EXPECT_EQ((-a).count_nanos(), -300'000'000);
  auto c = a;
  c += b;
  EXPECT_EQ(c, Duration::millis(500));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GT(Duration::seconds(1), Duration::millis(999));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_LE(Duration::zero(), Duration::zero());
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).to_millis(), 2.5);
}

TEST(Duration, ToString) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(Duration::millis(250).to_string(), "250.000ms");
  EXPECT_EQ(Duration::micros(10).to_string(), "10.000us");
  EXPECT_EQ(Duration::nanos(3).to_string(), "3ns");
  EXPECT_EQ(Duration::zero().to_string(), "0.000s");
  // Negative durations keep their unit scale.
  EXPECT_EQ(Duration::millis(-250).to_string(), "-250.000ms");
}

TEST(TimePoint, OriginAndArithmetic) {
  const auto t0 = TimePoint::origin();
  EXPECT_EQ(t0.nanos_since_origin(), 0);
  const auto t1 = t0 + Duration::seconds(5);
  EXPECT_EQ(t1.nanos_since_origin(), 5'000'000'000);
  EXPECT_EQ(t1 - t0, Duration::seconds(5));
  EXPECT_EQ((t1 - Duration::seconds(2)).nanos_since_origin(), 3'000'000'000);
  auto t2 = t1;
  t2 += Duration::seconds(1);
  EXPECT_EQ(t2 - t1, Duration::seconds(1));
}

TEST(TimePoint, Ordering) {
  const auto a = TimePoint::from_nanos(10);
  const auto b = TimePoint::from_nanos(20);
  EXPECT_LT(a, b);
  EXPECT_EQ(std::min(a, b), a);
  EXPECT_LT(a, TimePoint::max());
}

TEST(TimePoint, ToString) {
  EXPECT_EQ((TimePoint::origin() + Duration::millis(12345)).to_string(),
            "12.345000s");
}

}  // namespace
}  // namespace bgpsdn::core
