#include <gtest/gtest.h>

#include <sstream>

#include "core/logger.hpp"
#include "core/random.hpp"

namespace bgpsdn::core {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // Degenerate range.
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng{7};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{7};
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(Rng, JitteredStaysInBand) {
  Rng rng{7};
  const auto base = Duration::seconds(30);
  for (int i = 0; i < 1000; ++i) {
    const auto j = rng.jittered(base);  // default 0.75..1.0 (Quagga-like)
    EXPECT_GE(j, base * 0.75);
    EXPECT_LE(j, base);
  }
}

TEST(Rng, UniformDurationBounds) {
  Rng rng{7};
  const auto lo = Duration::millis(10);
  const auto hi = Duration::millis(20);
  for (int i = 0; i < 200; ++i) {
    const auto d = rng.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng{7};
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(Duration::seconds(2)).to_seconds();
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ForkIsIndependent) {
  Rng a{42};
  Rng child = a.fork();
  // The child stream must not equal the parent's continued stream.
  Rng b{42};
  b.fork();
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  (void)child;
}

TEST(Logger, RetainsRecordsInOrder) {
  Logger log;
  log.log(TimePoint::from_nanos(10), LogLevel::kInfo, "a", "ev1", "x");
  log.log(TimePoint::from_nanos(20), LogLevel::kInfo, "b", "ev2");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].event, "ev1");
  EXPECT_EQ(log.records()[1].component, "b");
}

TEST(Logger, MinLevelFilters) {
  Logger log;
  log.set_min_level(LogLevel::kWarn);
  log.log(TimePoint::origin(), LogLevel::kDebug, "a", "dropped");
  log.log(TimePoint::origin(), LogLevel::kError, "a", "kept");
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].event, "kept");
}

TEST(Logger, SinksFireEvenWithoutRetention) {
  Logger log;
  log.set_retain(false);
  int count = 0;
  log.add_sink([&](const LogRecord&) { ++count; });
  log.log(TimePoint::origin(), LogLevel::kInfo, "a", "ev");
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(log.records().empty());
}

TEST(Logger, RemoveSinkStopsDelivery) {
  Logger log;
  int count = 0;
  const auto id = log.add_sink([&](const LogRecord&) { ++count; });
  log.log(TimePoint::origin(), LogLevel::kInfo, "a", "ev");
  log.remove_sink(id);
  log.log(TimePoint::origin(), LogLevel::kInfo, "a", "ev");
  EXPECT_EQ(count, 1);
}

TEST(Logger, FilterByEventAndComponentPrefix) {
  Logger log;
  log.log(TimePoint::origin(), LogLevel::kInfo, "bgp.AS1", "update_tx");
  log.log(TimePoint::origin(), LogLevel::kInfo, "bgp.AS2", "update_tx");
  log.log(TimePoint::origin(), LogLevel::kInfo, "bgp.AS1", "update_rx");
  EXPECT_EQ(log.filter("update_tx").size(), 2u);
  EXPECT_EQ(log.filter("update_tx", "bgp.AS1").size(), 1u);
  EXPECT_EQ(log.count("update_rx"), 1u);
  EXPECT_EQ(log.count("nothing"), 0u);
}

TEST(Logger, EchoStream) {
  Logger log;
  std::ostringstream os;
  log.set_echo(&os);
  log.log(TimePoint::from_nanos(1'500'000'000), LogLevel::kWarn, "net",
          "link_down", "AS1 <-> AS2");
  EXPECT_NE(os.str().find("[WARN] net link_down: AS1 <-> AS2"),
            std::string::npos);
}

TEST(LogRecord, ToStringFormat) {
  LogRecord rec{TimePoint::origin(), LogLevel::kInfo, "comp", "ev", "detail"};
  EXPECT_EQ(rec.to_string(), "0.000000s [INFO] comp ev: detail");
  LogRecord bare{TimePoint::origin(), LogLevel::kError, "c", "e", ""};
  EXPECT_EQ(bare.to_string(), "0.000000s [ERROR] c e");
}

}  // namespace
}  // namespace bgpsdn::core
