// ControllerReplicaSet acceptance tests: leader election and sub-second
// takeover, unacknowledged-suffix replay, split votes under partition,
// partition-triggered deposal with anti-entropy resync, graceful degradation
// when every replica is down, and byte-identical seeded election churn at 1
// and 4 worker threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "controller/replica_set.hpp"
#include "framework/experiment.hpp"
#include "framework/trial.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::framework {
namespace {

using core::AsNumber;

const net::Prefix kPfx = *net::Prefix::parse("10.0.0.0/16");
const net::Prefix kPfx2 = *net::Prefix::parse("10.50.0.0/16");

ExperimentConfig ha_config(std::uint64_t seed, std::size_t replicas) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.controller_replicas = replicas;
  cfg.timers.mrai = core::Duration::millis(300);
  cfg.timers.hold = core::Duration::seconds(6);
  cfg.timers.keepalive = core::Duration::seconds(2);
  cfg.recompute_delay = core::Duration::millis(100);
  return cfg;
}

std::set<AsNumber> members_3to5() {
  return {AsNumber{3}, AsNumber{4}, AsNumber{5}};
}

bool all_reach(Experiment& exp, net::Ipv4Addr host) {
  for (const auto as : exp.spec().ases) {
    if (as == AsNumber{1}) continue;
    if (exp.trace_route(as, host).empty()) return false;
  }
  return true;
}

/// Run until every AS reaches the host again; returns the virtual seconds
/// it took (probing every 100 ms), or `limit` when censored.
double probe_until_reach(Experiment& exp, net::Ipv4Addr host, double limit) {
  const auto t0 = exp.loop().now();
  while ((exp.loop().now() - t0).to_seconds() < limit) {
    exp.run_for(core::Duration::millis(100));
    if (all_reach(exp, host)) return (exp.loop().now() - t0).to_seconds();
  }
  return limit;
}

TEST(ReplicaSet, SingleControllerHasNoReplicaLayer) {
  Experiment exp{topology::clique(5), members_3to5(), ha_config(3, 1)};
  ASSERT_TRUE(exp.start());
  EXPECT_EQ(exp.replica_set(), nullptr);
  // Replica-targeted faults on the single controller need id 0 or "all".
  EXPECT_THROW(exp.crash_controller_replica(1), std::invalid_argument);
}

TEST(ReplicaSet, ActivationElectsReplicaZero) {
  Experiment exp{topology::clique(5), members_3to5(), ha_config(3, 3)};
  ASSERT_TRUE(exp.start());
  auto* rs = exp.replica_set();
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->size(), 3u);
  ASSERT_TRUE(rs->leader().has_value());
  EXPECT_EQ(*rs->leader(), 0u);
  EXPECT_EQ(rs->cluster_epoch(), 1u);
  EXPECT_FALSE(rs->degraded());
  EXPECT_EQ(rs->live_count(), 3u);
  // The replication channel is live: standbys ack the bring-up deltas.
  exp.run_for(core::Duration::seconds(2));
  EXPECT_GT(rs->log_size(), 0u);
  EXPECT_EQ(rs->replica_acked(1), rs->log_size());
  EXPECT_EQ(rs->replica_acked(2), rs->log_size());
}

TEST(ReplicaSet, LeaderCrashTriggersSubSecondTakeover) {
  Experiment exp{topology::clique(5), members_3to5(), ha_config(7, 2)};
  const auto host = exp.add_host(AsNumber{1}).address();
  ASSERT_TRUE(exp.start());
  exp.run_for(core::Duration::seconds(2));
  ASSERT_TRUE(all_reach(exp, host));
  auto* rs = exp.replica_set();
  ASSERT_NE(rs, nullptr);
  const auto epoch_before = rs->cluster_epoch();

  // Crash the serving replica and fail a member's direct path to the host
  // in the same instant: recovery needs a live controller to reprogram the
  // member flow tables around the failure, so the probe measures the
  // failover hiccup (not the mere survival of installed flows).
  exp.crash_controller_replica(0);
  exp.fail_link(AsNumber{1}, AsNumber{3});
  EXPECT_FALSE(rs->degraded());  // the standby keeps the cluster centralized
  const double hiccup = probe_until_reach(exp, host, 10.0);
  EXPECT_LT(hiccup, 1.0) << "takeover did not hide the failover";

  ASSERT_TRUE(rs->leader().has_value());
  EXPECT_EQ(*rs->leader(), 1u);
  EXPECT_GE(rs->counters().takeovers, 1u);
  EXPECT_GT(rs->cluster_epoch(), epoch_before);
  const double latency = rs->last_election_latency().to_seconds();
  EXPECT_GT(latency, 0.0);
  EXPECT_LT(latency, 1.0);
  // The new leader's programming carries the bumped epoch end-to-end.
  exp.run_for(core::Duration::seconds(1));
  EXPECT_GE(exp.member_switch(AsNumber{3}).max_epoch_seen(),
            rs->cluster_epoch());
}

TEST(ReplicaSet, PartitionedStandbySplitVotesUntilLeaderDies) {
  Experiment exp{topology::clique(5), members_3to5(), ha_config(11, 2)};
  const auto host = exp.add_host(AsNumber{1}).address();
  ASSERT_TRUE(exp.start());
  exp.run_for(core::Duration::seconds(2));
  auto* rs = exp.replica_set();
  ASSERT_NE(rs, nullptr);

  // Cut the replication channel to the standby. Its lease expires, but its
  // candidacies cannot assemble quorum (2 of 2 live) across the partition:
  // every one expires as a split vote and the leader keeps serving.
  exp.partition_replication(1);
  exp.announce_prefix(AsNumber{2}, kPfx2);  // journaled but never acked
  exp.run_for(core::Duration::seconds(3));
  EXPECT_GT(rs->counters().split_votes, 0u);
  ASSERT_TRUE(rs->leader().has_value());
  EXPECT_EQ(*rs->leader(), 0u);
  EXPECT_LT(rs->replica_acked(1), rs->log_size());

  // Leader dies: the electorate shrinks to the partitioned survivor, which
  // self-elects and replays the whole unacknowledged suffix at takeover.
  exp.crash_controller_replica(0);
  exp.run_for(core::Duration::seconds(1));
  ASSERT_TRUE(rs->leader().has_value());
  EXPECT_EQ(*rs->leader(), 1u);
  EXPECT_GT(rs->counters().deltas_replayed, 0u);
  EXPECT_FALSE(rs->degraded());
  EXPECT_LT(probe_until_reach(exp, host, 10.0), 10.0);
  EXPECT_TRUE(exp.all_know_prefix(kPfx2));
}

TEST(ReplicaSet, PartitionedLeaderIsDeposedAndResyncsAfterHeal) {
  Experiment exp{topology::clique(5), members_3to5(), ha_config(13, 3)};
  const auto host = exp.add_host(AsNumber{1}).address();
  ASSERT_TRUE(exp.start());
  exp.run_for(core::Duration::seconds(2));
  auto* rs = exp.replica_set();
  ASSERT_NE(rs, nullptr);
  const auto epoch_before = rs->cluster_epoch();

  // The leader's replication links go dark; the two standbys still see each
  // other, miss the lease, and elect a new leader among themselves. The old
  // leader is deposed in place — its stale programming is epoch-fenced.
  exp.partition_replication(0);
  exp.run_for(core::Duration::seconds(2));
  ASSERT_TRUE(rs->leader().has_value());
  EXPECT_NE(*rs->leader(), 0u);
  EXPECT_GT(rs->cluster_epoch(), epoch_before);
  EXPECT_FALSE(rs->degraded());
  EXPECT_TRUE(rs->replica_partitioned(0));

  // Heal: the deposed ex-leader rejoins as an empty standby and anti-entropy
  // full-snapshots it back into sync.
  exp.heal_replication(0);
  exp.run_for(core::Duration::seconds(3));
  EXPECT_FALSE(rs->replica_partitioned(0));
  EXPECT_GE(rs->counters().snapshots_sent, 1u);
  EXPECT_EQ(rs->replica_acked(0), rs->log_size());
  EXPECT_TRUE(all_reach(exp, host));
}

TEST(ReplicaSet, AllReplicasDownDegradesThenRecovers) {
  Experiment exp{topology::clique(5), members_3to5(), ha_config(17, 2)};
  const auto host = exp.add_host(AsNumber{1}).address();
  ASSERT_TRUE(exp.start());
  exp.run_for(core::Duration::seconds(2));
  auto* rs = exp.replica_set();
  ASSERT_NE(rs, nullptr);

  exp.crash_controller_replica(0);
  exp.run_for(core::Duration::seconds(1));
  ASSERT_TRUE(rs->leader().has_value());
  const auto epoch_serving = rs->cluster_epoch();

  // The last replica dies: only now does the cluster fall back to PR 3's
  // distributed-BGP degradation, behind a fresh fencing epoch.
  exp.crash_controller_replica(1);
  EXPECT_TRUE(rs->degraded());
  EXPECT_FALSE(rs->leader().has_value());
  EXPECT_GT(rs->cluster_epoch(), epoch_serving);
  ASSERT_NE(exp.fallback(), nullptr);
  EXPECT_TRUE(exp.fallback()->active());
  EXPECT_LT(probe_until_reach(exp, host, 30.0), 30.0);

  // One replica returns: fallback stands down and the controller resyncs.
  exp.restart_controller_replica(0);
  EXPECT_FALSE(rs->degraded());
  ASSERT_TRUE(rs->leader().has_value());
  EXPECT_EQ(*rs->leader(), 0u);
  EXPECT_FALSE(exp.fallback()->active());
  EXPECT_LT(probe_until_reach(exp, host, 30.0), 30.0);
}

// --- seeded election churn, byte-identical across job counts ----------------

struct ChurnCapture {
  std::string ribs;
  std::string flows;
  std::string metrics;
  std::uint64_t elections{0};
  std::uint32_t epoch{0};
};

/// 25 seeded leader crash/restart rounds on a 3-replica cluster. Every
/// round forces one election, so four seeds give a 100-election churn.
ChurnCapture run_election_churn(std::uint64_t seed) {
  Experiment exp{topology::clique(4), {AsNumber{3}, AsNumber{4}},
                 ha_config(seed, 3)};
  exp.announce_prefix(AsNumber{1}, kPfx);
  EXPECT_TRUE(exp.start());
  exp.run_for(core::Duration::seconds(2));
  auto* rs = exp.replica_set();
  EXPECT_NE(rs, nullptr);

  for (int round = 0; round < 25; ++round) {
    while (!rs->leader().has_value()) {
      exp.run_for(core::Duration::millis(100));
    }
    const int leader = static_cast<int>(*rs->leader());
    exp.crash_controller_replica(leader);
    exp.run_for(core::Duration::millis(800));
    exp.restart_controller_replica(leader);
    exp.run_for(core::Duration::millis(400));
  }
  exp.wait_converged();

  ChurnCapture cap;
  std::vector<std::string> ribs;
  for (const auto as : exp.spec().ases) {
    if (exp.is_member(as)) continue;
    exp.router(as).loc_rib().for_each([&](const bgp::Route& route) {
      ribs.push_back(as.to_string() + " " + route.prefix.to_string() + " [" +
                     route.attributes->as_path.to_string() + "]");
    });
  }
  std::sort(ribs.begin(), ribs.end());
  for (const auto& line : ribs) cap.ribs += line + "\n";
  for (const auto as : exp.spec().ases) {
    if (!exp.is_member(as)) continue;
    for (const auto& e : exp.member_switch(as).table().entries()) {
      cap.flows += as.to_string() + " " + e.to_string() + "\n";
    }
  }
  cap.metrics = exp.telemetry().metrics().snapshot().dump();
  cap.elections = rs->counters().elections;
  cap.epoch = rs->cluster_epoch();
  return cap;
}

TEST(ReplicaSetDeterminism, ElectionChurnByteIdenticalAcrossJobCounts) {
  const auto run_with_jobs = [](std::size_t jobs) {
    std::vector<ChurnCapture> caps(4);
    parallel_for_index(4, jobs, [&](std::size_t i) {
      caps[i] = run_election_churn(200 + i);
    });
    return caps;
  };
  const auto serial = run_with_jobs(1);
  const auto threaded = run_with_jobs(4);
  ASSERT_EQ(serial.size(), threaded.size());
  std::uint64_t total_elections = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].ribs.empty()) << "seed " << 200 + i;
    EXPECT_EQ(serial[i].ribs, threaded[i].ribs) << "seed " << 200 + i;
    EXPECT_EQ(serial[i].flows, threaded[i].flows) << "seed " << 200 + i;
    EXPECT_EQ(serial[i].metrics, threaded[i].metrics) << "seed " << 200 + i;
    EXPECT_EQ(serial[i].elections, threaded[i].elections) << "seed " << 200 + i;
    EXPECT_EQ(serial[i].epoch, threaded[i].epoch) << "seed " << 200 + i;
    total_elections += serial[i].elections;
  }
  // The churn is vacuous unless it actually held ~100 elections.
  EXPECT_GE(total_elections, 100u);
}

}  // namespace
}  // namespace bgpsdn::framework
