// IncrementalSpt vs the shortest_paths() reference: targeted delta cases,
// path_to / tie-break edge cases, and a seeded randomized equivalence sweep
// that byte-compares the snapshot after every single delta.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "controller/dijkstra.hpp"
#include "core/random.hpp"

namespace bgpsdn::controller {
namespace {

// Rebuild the reference answer from the engine's own graph so both sides see
// the exact same edge multiset.
DijkstraResult reference_of(const IncrementalSpt& spt) {
  return shortest_paths(spt.graph(), spt.source());
}

void expect_matches_reference(const IncrementalSpt& spt, const char* where) {
  const DijkstraResult want = reference_of(spt);
  const DijkstraResult got = spt.snapshot();
  EXPECT_EQ(got.dist, want.dist) << where;
  EXPECT_EQ(got.prev, want.prev) << where;
}

TEST(PathTo, SourceEqualsTarget) {
  AdjacencyList g;
  g.add_edge(1, 2, 1);
  const auto res = shortest_paths(g, 1);
  EXPECT_EQ(path_to(res, 1, 1), (std::vector<std::uint64_t>{1}));
}

TEST(PathTo, UnreachableTargetIsEmpty) {
  AdjacencyList g;
  g.add_edge(1, 2, 1);
  g.intern(9);
  const auto res = shortest_paths(g, 1);
  EXPECT_TRUE(path_to(res, 1, 9).empty());
}

TEST(PathTo, UnknownTargetIsEmpty) {
  AdjacencyList g;
  g.add_edge(1, 2, 1);
  const auto res = shortest_paths(g, 1);
  EXPECT_TRUE(path_to(res, 1, 42).empty());
}

TEST(PathTo, EqualCostParallelPathsFollowTieBreak) {
  // 1 -> {2,3} -> 4, both cost 2: the path must route through 2 (lower id).
  AdjacencyList g;
  g.add_edge(1, 3, 1);  // insertion order must not matter
  g.add_edge(1, 2, 1);
  g.add_edge(3, 4, 1);
  g.add_edge(2, 4, 1);
  const auto res = shortest_paths(g, 1);
  EXPECT_EQ(path_to(res, 1, 4), (std::vector<std::uint64_t>{1, 2, 4}));
}

TEST(Dijkstra, TieBreakPrefersEarlierSettledOverLowerId) {
  // Node 2 is reached at dist 2 via 9 (settled, dist 1) and via 5 (dist 2,
  // same as 2 — not settled before it). The contract picks the settled
  // predecessor 9 even though 5 has the lower id.
  AdjacencyList g;
  g.add_edge(1, 9, 1);
  g.add_edge(9, 2, 1);
  g.add_edge(1, 5, 2);
  g.add_edge(5, 2, 0);  // would tie at dist 2 — but 5 settles with 2
  // weight-0 edge not out of the source violates the IncrementalSpt
  // precondition; this test pins the *reference* contract only.
  const auto res = shortest_paths(g, 1);
  EXPECT_EQ(res.dist.at(2), 2u);
  EXPECT_EQ(res.prev.at(2), 9u);
}

TEST(Dijkstra, ZeroWeightEdgeFromSource) {
  // The AS-topology shape: a weight-0 origin edge out of the root.
  AdjacencyList g;
  g.add_edge(1, 7, 0);
  g.add_edge(1, 3, 1);
  g.add_edge(7, 3, 1);
  const auto res = shortest_paths(g, 1);
  EXPECT_EQ(res.dist.at(7), 0u);
  EXPECT_EQ(res.dist.at(3), 1u);
  // 3 is tight via both 1 (source) and 7 (dist 0); both settle before 3,
  // and 1 has the lower id.
  EXPECT_EQ(res.prev.at(3), 1u);
}

TEST(IncrementalSpt, EmptyEngineKnowsOnlySource) {
  IncrementalSpt spt{5};
  EXPECT_EQ(spt.distance(5), std::optional<std::uint32_t>{0});
  EXPECT_EQ(spt.parent(5), std::nullopt);
  EXPECT_EQ(spt.distance(6), std::nullopt);
  const auto snap = spt.snapshot();
  EXPECT_EQ(snap.dist.size(), 1u);
  EXPECT_TRUE(snap.prev.empty());
}

TEST(IncrementalSpt, EdgeAddedExtendsTree) {
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 1);
  spt.edge_added(2, 3, 4);
  expect_matches_reference(spt, "after build");
  EXPECT_EQ(spt.distance(3), std::optional<std::uint32_t>{5});
  EXPECT_EQ(spt.parent(3), std::optional<std::uint64_t>{2});
}

TEST(IncrementalSpt, ImprovingEdgeRelaxesDownstream) {
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 10);
  spt.edge_added(2, 3, 1);
  const std::uint64_t rev = spt.revision();
  spt.edge_added(1, 2, 2);  // parallel cheaper edge
  EXPECT_GT(spt.revision(), rev);
  EXPECT_EQ(spt.distance(2), std::optional<std::uint32_t>{2});
  EXPECT_EQ(spt.distance(3), std::optional<std::uint32_t>{3});
  expect_matches_reference(spt, "after improvement");
}

TEST(IncrementalSpt, RedundantEdgeDoesNotBumpRevision) {
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 1);
  spt.edge_added(2, 3, 1);
  const std::uint64_t rev = spt.revision();
  spt.edge_added(1, 3, 9);  // strictly worse than the existing path
  EXPECT_EQ(spt.revision(), rev);
  expect_matches_reference(spt, "after redundant add");
}

TEST(IncrementalSpt, EqualCostEdgeUpdatesTieBreakOnly) {
  IncrementalSpt spt{1};
  spt.edge_added(1, 3, 1);
  spt.edge_added(3, 4, 1);
  expect_matches_reference(spt, "before tie");
  EXPECT_EQ(spt.parent(4), std::optional<std::uint64_t>{3});
  spt.edge_added(1, 2, 1);
  spt.edge_added(2, 4, 1);  // ties at dist 2; 2 < 3 wins
  EXPECT_EQ(spt.distance(4), std::optional<std::uint32_t>{2});
  EXPECT_EQ(spt.parent(4), std::optional<std::uint64_t>{2});
  expect_matches_reference(spt, "after tie");
}

TEST(IncrementalSpt, RemovingTreeEdgeReroutes) {
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 1);
  spt.edge_added(2, 3, 1);
  spt.edge_added(1, 3, 5);
  spt.edge_removed(2, 3, 1);
  EXPECT_EQ(spt.distance(3), std::optional<std::uint32_t>{5});
  EXPECT_EQ(spt.parent(3), std::optional<std::uint64_t>{1});
  expect_matches_reference(spt, "after reroute");
}

TEST(IncrementalSpt, RemovingLastPathDisconnects) {
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 1);
  spt.edge_added(2, 3, 1);
  spt.edge_removed(1, 2, 1);
  EXPECT_EQ(spt.distance(2), std::nullopt);
  EXPECT_EQ(spt.distance(3), std::nullopt);
  expect_matches_reference(spt, "after disconnect");
  // Re-adding restores the exact old tree.
  spt.edge_added(1, 2, 1);
  EXPECT_EQ(spt.distance(3), std::optional<std::uint32_t>{2});
  expect_matches_reference(spt, "after reconnect");
}

TEST(IncrementalSpt, RemovingNonTreeEdgeIsCheap) {
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 1);
  spt.edge_added(2, 3, 1);
  spt.edge_added(1, 3, 9);
  const std::uint64_t replayed = spt.vertices_replayed();
  const std::uint64_t rev = spt.revision();
  spt.edge_removed(1, 3, 9);
  EXPECT_EQ(spt.vertices_replayed(), replayed);
  EXPECT_EQ(spt.revision(), rev);
  expect_matches_reference(spt, "after slack removal");
}

TEST(IncrementalSpt, WorseningKeepsSupportedDistance) {
  // 4 is tight via both 2 and 3. Worsening the tree edge (2,4) must fall
  // back to the surviving support via 3 without disturbing the distance.
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 1);
  spt.edge_added(1, 3, 1);
  spt.edge_added(2, 4, 1);
  spt.edge_added(3, 4, 1);
  EXPECT_EQ(spt.parent(4), std::optional<std::uint64_t>{2});
  spt.weight_changed(2, 4, 1, 7);
  EXPECT_EQ(spt.distance(4), std::optional<std::uint32_t>{2});
  EXPECT_EQ(spt.parent(4), std::optional<std::uint64_t>{3});
  expect_matches_reference(spt, "after supported worsening");
}

TEST(IncrementalSpt, WeightChangeImprovement) {
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 9);
  spt.edge_added(2, 3, 1);
  spt.weight_changed(1, 2, 9, 2);
  EXPECT_EQ(spt.distance(2), std::optional<std::uint32_t>{2});
  EXPECT_EQ(spt.distance(3), std::optional<std::uint32_t>{3});
  expect_matches_reference(spt, "after weight improvement");
}

TEST(IncrementalSpt, RegionReplayCascades) {
  // A chain hanging off an edge whose removal disconnects and then reroutes
  // a whole subtree through a costlier detour.
  IncrementalSpt spt{1};
  spt.edge_added(1, 2, 1);
  spt.edge_added(2, 3, 1);
  spt.edge_added(3, 4, 1);
  spt.edge_added(4, 5, 1);
  spt.edge_added(1, 9, 2);
  spt.edge_added(9, 3, 2);
  spt.edge_removed(2, 3, 1);
  EXPECT_EQ(spt.distance(3), std::optional<std::uint32_t>{4});
  EXPECT_EQ(spt.distance(5), std::optional<std::uint32_t>{6});
  EXPECT_EQ(spt.parent(3), std::optional<std::uint64_t>{9});
  expect_matches_reference(spt, "after cascade");
}

// --- randomized equivalence sweep -------------------------------------------

struct RandomEdge {
  std::uint64_t from;
  std::uint64_t to;
  std::uint32_t weight;
};

// 1000 random deltas over a small node universe; the engine must match the
// reference after every single step. Weight 0 is exercised only out of the
// source, as the AS-topology precondition guarantees.
void run_random_sweep(std::uint64_t seed) {
  constexpr std::uint64_t kSource = 1;
  constexpr std::int64_t kMaxNode = 12;
  constexpr int kDeltas = 1000;
  core::Rng rng{seed};
  IncrementalSpt spt{kSource};
  std::vector<RandomEdge> live;

  for (int step = 0; step < kDeltas; ++step) {
    const bool remove =
        !live.empty() && rng.chance(live.size() >= 40 ? 0.6 : 0.35);
    if (remove) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const RandomEdge e = live[pick];
      live[pick] = live.back();
      live.pop_back();
      spt.edge_removed(e.from, e.to, e.weight);
    } else {
      RandomEdge e;
      e.from = static_cast<std::uint64_t>(rng.uniform_int(1, kMaxNode));
      do {
        e.to = static_cast<std::uint64_t>(rng.uniform_int(1, kMaxNode));
      } while (e.to == e.from);
      const std::int64_t lo = (e.from == kSource) ? 0 : 1;
      e.weight = static_cast<std::uint32_t>(rng.uniform_int(lo, 4));
      live.push_back(e);
      spt.edge_added(e.from, e.to, e.weight);
    }
    const DijkstraResult want = reference_of(spt);
    const DijkstraResult got = spt.snapshot();
    ASSERT_EQ(got.dist, want.dist) << "seed " << seed << " step " << step;
    ASSERT_EQ(got.prev, want.prev) << "seed " << seed << " step " << step;
  }
}

TEST(IncrementalSptRandom, EquivalenceSeed1) { run_random_sweep(1); }
TEST(IncrementalSptRandom, EquivalenceSeed2) { run_random_sweep(2); }
TEST(IncrementalSptRandom, EquivalenceSeed3) { run_random_sweep(3); }

TEST(IncrementalSptRandom, WeightChangeSweep) {
  // Same idea, but mutate weights of live edges in place instead of
  // add/remove churn.
  constexpr std::uint64_t kSource = 1;
  core::Rng rng{99};
  IncrementalSpt spt{kSource};
  std::vector<RandomEdge> live;
  for (std::uint64_t a = 1; a <= 8; ++a) {
    for (std::uint64_t b = 1; b <= 8; ++b) {
      if (a == b || !rng.chance(0.5)) continue;
      RandomEdge e{a, b, static_cast<std::uint32_t>(rng.uniform_int(1, 4))};
      live.push_back(e);
      spt.edge_added(e.from, e.to, e.weight);
    }
  }
  ASSERT_FALSE(live.empty());
  for (int step = 0; step < 1000; ++step) {
    auto& e = live[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
    const std::int64_t lo = (e.from == kSource) ? 0 : 1;
    const auto next = static_cast<std::uint32_t>(rng.uniform_int(lo, 6));
    spt.weight_changed(e.from, e.to, e.weight, next);
    e.weight = next;
    const DijkstraResult want = reference_of(spt);
    const DijkstraResult got = spt.snapshot();
    ASSERT_EQ(got.dist, want.dist) << "step " << step;
    ASSERT_EQ(got.prev, want.prev) << "step " << step;
  }
}

TEST(IncrementalSptRandom, ReplayCostStaysSublinear) {
  // Sanity bound on the cost counter: N flaps of one clique edge must not
  // replay anywhere near N * node_count vertices (what from-scratch reruns
  // would pay).
  constexpr std::uint64_t kN = 16;
  IncrementalSpt spt{1};
  for (std::uint64_t a = 1; a <= kN; ++a)
    for (std::uint64_t b = 1; b <= kN; ++b)
      if (a != b) spt.edge_added(a, b, 1);
  const std::uint64_t before = spt.vertices_replayed();
  constexpr std::uint64_t kFlaps = 100;
  for (std::uint64_t i = 0; i < kFlaps; ++i) {
    spt.edge_removed(1, 2, 1);  // a tree edge: forces a real region replay
    spt.edge_added(1, 2, 1);
  }
  const std::uint64_t paid = spt.vertices_replayed() - before;
  expect_matches_reference(spt, "after flap train");
  // In a clique the affected region is just node 2 (every other vertex keeps
  // its direct source edge), so each flap resettles O(1) vertices where a
  // from-scratch rerun pays kN. 5x slack avoids pinning the implementation.
  EXPECT_LE(paid, 2 * kFlaps * 5);
  EXPECT_LT(paid, 2 * kFlaps * kN / 4);
}

}  // namespace
}  // namespace bgpsdn::controller
