// IdrController behaviour on a live hybrid network: reactive flow repair,
// burst batching, origin lifecycle, counters.
#include <gtest/gtest.h>

#include "framework/experiment.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::controller {
namespace {

framework::ExperimentConfig quick(std::uint64_t seed = 3) {
  framework::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(400);
  cfg.recompute_delay = core::Duration::millis(150);
  return cfg;
}

TEST(IdrController, ReactiveRepairAfterFlowLoss) {
  // Simulate a switch losing a rule (e.g. table wipe on restart): the next
  // packet punts to the controller, which reinstalls from its decision
  // state and forwards the packet via PacketOut.
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, quick()};
  auto& h1 = exp.add_host(as1);
  auto& h3 = exp.add_host(as3);
  ASSERT_TRUE(exp.start());

  // Confirm live forwarding, then wipe the data rule on AS3's switch.
  h3.send_probe(h1.address(), 1);
  exp.run_for(core::Duration::seconds(1));
  ASSERT_EQ(h3.replies_received(), 1u);

  const auto pfx1 = exp.as_prefix(as1);
  ASSERT_GT(exp.member_switch(as3).table().remove_by_dst(pfx1), 0u);
  const auto misses0 = exp.member_switch(as3).counters().table_misses;

  h3.send_probe(h1.address(), 2);
  exp.run_for(core::Duration::seconds(1));
  // The probe still made it (PacketOut) and the rule is back.
  EXPECT_EQ(h3.replies_received(), 2u);
  EXPECT_GT(exp.member_switch(as3).counters().table_misses, misses0);
  bool rule_back = false;
  for (const auto& e : exp.member_switch(as3).table().entries()) {
    rule_back = rule_back || e.match.dst == pfx1;
  }
  EXPECT_TRUE(rule_back);

  // A third probe uses the reinstalled rule (no further miss).
  const auto misses1 = exp.member_switch(as3).counters().table_misses;
  h3.send_probe(h1.address(), 3);
  exp.run_for(core::Duration::seconds(1));
  EXPECT_EQ(h3.replies_received(), 3u);
  EXPECT_EQ(exp.member_switch(as3).counters().table_misses, misses1);
}

TEST(IdrController, PacketToUnknownDestinationDropped) {
  const auto spec = topology::clique(4);
  const core::AsNumber as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, quick()};
  auto& h3 = exp.add_host(as3);
  ASSERT_TRUE(exp.start());
  const auto ins0 = exp.idr_controller()->base_counters().packet_ins;
  h3.send_probe(net::Ipv4Addr{203, 0, 113, 7}, 9);
  exp.run_for(core::Duration::seconds(1));
  EXPECT_EQ(h3.replies_received(), 0u);
  EXPECT_GT(exp.idr_controller()->base_counters().packet_ins, ins0);
}

TEST(IdrController, OriginLifecycleAnnouncesAndWithdraws) {
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, quick()};
  ASSERT_TRUE(exp.start());

  const auto pfx = *net::Prefix::parse("10.77.0.0/16");
  exp.announce_prefix(as3, pfx);
  exp.wait_converged();
  ASSERT_NE(exp.router(as1).loc_rib().find(pfx), nullptr);
  EXPECT_GT(exp.idr_controller()->counters().announces, 0u);

  exp.withdraw_prefix(as3, pfx);
  exp.wait_converged();
  EXPECT_EQ(exp.router(as1).loc_rib().find(pfx), nullptr);
  EXPECT_GT(exp.idr_controller()->counters().withdraws, 0u);
  EXPECT_EQ(exp.idr_controller()->decision_for(pfx)->hops.size(), 0u);
}

TEST(IdrController, BorderPortFailureResetsPeering) {
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, quick()};
  exp.announce_prefix(as1, exp.as_prefix(as1));
  ASSERT_TRUE(exp.start());

  const auto resets0 = exp.idr_controller()->counters().border_port_resets;
  exp.fail_link(as1, as3);
  exp.run_for(core::Duration::seconds(1));
  EXPECT_EQ(exp.idr_controller()->counters().border_port_resets, resets0 + 1);

  // The routes learned on that peering are gone; the prefix survives via
  // the other border (AS1 <-> AS4 or via legacy AS2).
  exp.wait_converged();
  const auto* d = exp.idr_controller()->decision_for(exp.as_prefix(as1));
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->reachable(exp.member_switch(as3).dpid()));
}

TEST(IdrController, BurstOfUpdatesBatchesIntoOnePass) {
  // Many prefixes announced "simultaneously" from a legacy AS dirty many
  // prefixes but trigger a single recompute pass.
  auto cfg = quick();
  cfg.recompute_delay = core::Duration::seconds(2);
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, cfg};
  ASSERT_TRUE(exp.start());

  const auto passes0 = exp.idr_controller()->counters().recompute_passes;
  for (std::uint32_t i = 0; i < 12; ++i) {
    exp.announce_prefix(as1, net::Prefix{net::Ipv4Addr{(10u << 24) | ((60 + i) << 16)}, 16});
  }
  exp.wait_converged();
  const auto passes = exp.idr_controller()->counters().recompute_passes - passes0;
  // The 12 announcements arrive within one MRAI wave; the 2 s batch window
  // coalesces them into very few passes.
  EXPECT_LE(passes, 3u);
  const auto* d = exp.idr_controller()->decision_for(
      *net::Prefix::parse("10.71.0.0/16"));
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->reachable(exp.member_switch(as3).dpid()));
}

TEST(IdrController, SwitchGraphMirrorsLinkState) {
  const auto spec = topology::clique(4);
  const core::AsNumber as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, quick()};
  ASSERT_TRUE(exp.start());
  ASSERT_TRUE(exp.idr_controller()->switch_graph().is_connected());

  exp.fail_link(as3, as4);
  exp.run_for(core::Duration::seconds(1));
  EXPECT_FALSE(exp.idr_controller()->switch_graph().is_connected());

  exp.restore_link(as3, as4);
  exp.run_for(core::Duration::seconds(1));
  EXPECT_TRUE(exp.idr_controller()->switch_graph().is_connected());
}

}  // namespace
}  // namespace bgpsdn::controller
