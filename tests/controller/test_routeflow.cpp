// RouteFlowController (related-work baseline): the mirrored virtual
// network must reproduce legacy BGP behaviour end to end — routes in both
// directions, flow programming from virtual Loc-RIBs, withdrawal cleanup —
// and, crucially, show NO centralization gain compared to the IDR
// controller (that contrast is the paper's positioning claim).
#include <gtest/gtest.h>

#include "framework/connectivity.hpp"
#include "framework/experiment.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::controller {
namespace {

framework::ExperimentConfig rf_config(std::uint64_t seed = 5) {
  framework::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.controller_style = framework::ControllerStyle::kRouteFlowMirror;
  cfg.timers.mrai = core::Duration::millis(400);
  cfg.routeflow_sync = core::Duration::millis(100);
  return cfg;
}

TEST(RouteFlow, LegacyPrefixProgramsFlowsViaMirror) {
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, rf_config()};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(as1, pfx);
  ASSERT_TRUE(exp.start());
  exp.wait_converged();

  ASSERT_EQ(exp.idr_controller(), nullptr);
  auto* rf = exp.routeflow_controller();
  ASSERT_NE(rf, nullptr);
  // The virtual routers learned the prefix through their ghosts.
  const auto* v3 = rf->virtual_router(exp.member_switch(as3).dpid());
  ASSERT_NE(v3, nullptr);
  ASSERT_NE(v3->loc_rib().find(pfx), nullptr);
  EXPECT_EQ(v3->loc_rib().find(pfx)->attributes->as_path.to_string(), "1");
  // And the sync loop compiled it into the real switch tables.
  EXPECT_TRUE(exp.all_know_prefix(pfx));
  EXPECT_GT(rf->counters().flow_adds, 0u);
  EXPECT_GT(rf->counters().relayed_in, 0u);
}

TEST(RouteFlow, ClusterOriginReachesLegacyWorld) {
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, rf_config()};
  const auto pfx = *net::Prefix::parse("10.77.0.0/16");
  exp.announce_prefix(as3, pfx);
  ASSERT_TRUE(exp.start());
  exp.wait_converged();

  const bgp::Route* at1 = exp.router(as1).loc_rib().find(pfx);
  ASSERT_NE(at1, nullptr);
  // The virtual AS3 router announced it; the ghost relayed it out.
  EXPECT_EQ(at1->attributes->as_path.first()->value(), 3u);
  EXPECT_GT(exp.routeflow_controller()->counters().relayed_out, 0u);
}

TEST(RouteFlow, DataPlaneEndToEnd) {
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, rf_config()};
  auto& h1 = exp.add_host(as1);
  auto& h3 = exp.add_host(as3);
  ASSERT_TRUE(exp.start());
  exp.wait_converged();

  const auto path = exp.trace_route(as3, h1.address());
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), as1);

  auto& mon = exp.attach_monitor<framework::ConnectivityMonitor>(
      h1, h3, core::Duration::millis(100));
  mon.start();
  exp.run_for(core::Duration::seconds(2));
  mon.stop();
  exp.run_for(core::Duration::seconds(1));
  EXPECT_DOUBLE_EQ(mon.report().delivery_ratio, 1.0);
}

TEST(RouteFlow, WithdrawalCleansEverything) {
  const auto spec = topology::clique(5);
  const core::AsNumber as1{1};
  framework::Experiment exp{spec, {core::AsNumber{4}, core::AsNumber{5}},
                            rf_config()};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(as1, pfx);
  ASSERT_TRUE(exp.start());
  exp.wait_converged();
  ASSERT_TRUE(exp.all_know_prefix(pfx));

  exp.withdraw_prefix(as1, pfx);
  exp.wait_converged();
  // Give the sync poll one more period to mirror the final RIB state.
  exp.run_for(core::Duration::millis(300));
  EXPECT_TRUE(exp.all_know_prefix(pfx, /*expect_present=*/false));
  EXPECT_GT(exp.routeflow_controller()->counters().flow_deletes, 0u);
}

TEST(RouteFlow, IntraClusterFailureMirrorsIntoVirtualNetwork) {
  // Line 1-2-3-4, members {3,4}: failing 3-4 must drop the virtual session
  // too, leaving virtual AS4 (and so switch 4) without routes.
  const auto spec = topology::line(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  framework::Experiment exp{spec, {as3, as4}, rf_config()};
  auto& h1 = exp.add_host(as1);
  exp.add_host(as4);
  ASSERT_TRUE(exp.start());
  exp.wait_converged();
  ASSERT_FALSE(exp.trace_route(as4, h1.address()).empty());

  exp.fail_link(as3, as4);
  exp.wait_converged();
  exp.run_for(core::Duration::seconds(1));
  const auto* v4 =
      exp.routeflow_controller()->virtual_router(exp.member_switch(as4).dpid());
  EXPECT_EQ(v4->loc_rib().find(exp.as_prefix(as1)), nullptr);
  EXPECT_TRUE(exp.trace_route(as4, h1.address()).empty());

  exp.restore_link(as3, as4);
  exp.wait_converged();
  exp.run_for(core::Duration::seconds(1));
  EXPECT_FALSE(exp.trace_route(as4, h1.address()).empty());
}

TEST(RouteFlow, NoCentralizationGainVersusIdr) {
  // The headline contrast: on the same withdrawal scenario, the IDR
  // controller converges the cluster in one recomputation while RouteFlow
  // hunts at (virtual) BGP speed. Quantified properly in
  // bench_routeflow_comparison; here we assert the ordering.
  const auto run_style = [](framework::ControllerStyle style) {
    framework::ExperimentConfig cfg;
    cfg.seed = 11;
    cfg.controller_style = style;
    cfg.timers.mrai = core::Duration::seconds(2);
    cfg.recompute_delay = core::Duration::millis(200);
    cfg.routeflow_sync = core::Duration::millis(200);
    const auto spec = topology::clique(8);
    std::set<core::AsNumber> members;
    for (std::uint32_t as = 4; as <= 8; ++as) members.insert(core::AsNumber{as});
    framework::Experiment exp{spec, members, cfg};
    const auto pfx = *net::Prefix::parse("10.0.0.0/16");
    exp.announce_prefix(core::AsNumber{1}, pfx);
    EXPECT_TRUE(exp.start(core::Duration::seconds(600)));
    exp.wait_converged(framework::WaitOpts{core::Duration::seconds(5),
                                           core::Duration::seconds(600)});
    const auto t0 = exp.loop().now();
    exp.withdraw_prefix(core::AsNumber{1}, pfx);
    const auto conv = exp.wait_converged(framework::WaitOpts{
        core::Duration::seconds(5), core::Duration::seconds(1200)});
    return conv.since(t0).to_seconds();
  };
  const double idr = run_style(framework::ControllerStyle::kIdrCentralized);
  const double rf = run_style(framework::ControllerStyle::kRouteFlowMirror);
  EXPECT_LT(idr, rf) << "centralized computation must beat mirrored BGP";
}

}  // namespace
}  // namespace bgpsdn::controller
