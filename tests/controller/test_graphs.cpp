// SwitchGraph, Dijkstra and the per-prefix AS-topology transformation.
#include <gtest/gtest.h>

#include "controller/as_topology.hpp"
#include "controller/dijkstra.hpp"
#include "controller/route_compiler.hpp"
#include "controller/switch_graph.hpp"

namespace bgpsdn::controller {
using sdn::Dpid;
namespace {

TEST(Dijkstra, SimpleChain) {
  AdjacencyList g;
  g.add_edge(1, 2, 1);
  g.add_edge(2, 1, 1);
  g.add_edge(2, 3, 4);
  g.add_edge(3, 2, 4);
  const auto res = shortest_paths(g, 1);
  EXPECT_EQ(res.dist.at(1), 0u);
  EXPECT_EQ(res.dist.at(2), 1u);
  EXPECT_EQ(res.dist.at(3), 5u);
  EXPECT_EQ(path_to(res, 1, 3), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Dijkstra, PrefersCheaperLongerHopPath) {
  AdjacencyList g;
  g.add_edge(1, 2, 10);
  g.add_edge(1, 3, 1);
  g.add_edge(3, 2, 1);
  const auto res = shortest_paths(g, 1);
  EXPECT_EQ(res.dist.at(2), 2u);
  EXPECT_EQ(path_to(res, 1, 2), (std::vector<std::uint64_t>{1, 3, 2}));
}

TEST(Dijkstra, UnreachableNodeAbsent) {
  AdjacencyList g;
  g.intern(1);
  g.intern(2);
  const auto res = shortest_paths(g, 1);
  EXPECT_EQ(res.dist.count(2), 0u);
  EXPECT_TRUE(path_to(res, 1, 2).empty());
}

TEST(Dijkstra, DeterministicTieBreakTowardsLowerVia) {
  // Two equal-cost paths to 4: via 2 and via 3. The lower node id wins.
  AdjacencyList g;
  g.add_edge(1, 2, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(2, 4, 1);
  g.add_edge(3, 4, 1);
  const auto res = shortest_paths(g, 1);
  EXPECT_EQ(res.dist.at(4), 2u);
  EXPECT_EQ(res.prev.at(4), 2u);
}

TEST(AdjacencyListTest, InternAndEdgeBookkeeping) {
  AdjacencyList g;
  EXPECT_EQ(g.index_of(7), AdjacencyList::kNoIndex);
  const auto a = g.intern(7);
  EXPECT_EQ(g.intern(7), a);  // idempotent
  EXPECT_EQ(g.node_id(a), 7u);
  g.add_edge(7, 9, 3);
  g.add_edge(7, 9, 3);  // parallel edges kept distinct
  EXPECT_EQ(g.arc_count(), 2u);
  EXPECT_TRUE(g.remove_edge(7, 9, 3));
  EXPECT_EQ(g.arc_count(), 1u);
  EXPECT_FALSE(g.remove_edge(7, 9, 5));  // no arc with that weight
  EXPECT_FALSE(g.remove_edge(7, 11, 3));  // unknown target
  g.clear_edges_from(7);
  EXPECT_EQ(g.arc_count(), 0u);
  EXPECT_EQ(g.node_count(), 2u);  // nodes survive edge removal
}

TEST(SwitchGraph, NeighborsRespectLinkState) {
  SwitchGraph g;
  g.add_switch(1, core::AsNumber{10});
  g.add_switch(2, core::AsNumber{20});
  g.add_link(1, core::PortId{0}, 2, core::PortId{3});
  EXPECT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0].peer, 2u);
  EXPECT_EQ(g.neighbors(2)[0].local_port.value(), 3u);

  EXPECT_TRUE(g.set_port_state(1, core::PortId{0}, false));
  EXPECT_TRUE(g.neighbors(1).empty());
  EXPECT_TRUE(g.neighbors(2).empty());  // both directions down
  EXPECT_EQ(g.neighbors(1, /*include_down=*/true).size(), 1u);

  EXPECT_FALSE(g.set_port_state(1, core::PortId{9}, false));  // unknown port
  EXPECT_FALSE(g.set_port_state(99, core::PortId{0}, false));  // unknown switch
}

TEST(SwitchGraph, OwnerLookupBothWays) {
  SwitchGraph g;
  g.add_switch(5, core::AsNumber{50});
  EXPECT_EQ(g.owner_of(5)->value(), 50u);
  EXPECT_EQ(g.switch_of(core::AsNumber{50}).value(), 5u);
  EXPECT_FALSE(g.owner_of(6).has_value());
  EXPECT_FALSE(g.switch_of(core::AsNumber{51}).has_value());
}

TEST(SwitchGraph, ComponentsAndConnectivity) {
  SwitchGraph g;
  for (int i = 1; i <= 4; ++i) {
    g.add_switch(static_cast<Dpid>(i), core::AsNumber{static_cast<std::uint32_t>(i * 10)});
  }
  g.add_link(1, core::PortId{0}, 2, core::PortId{0});
  g.add_link(3, core::PortId{0}, 4, core::PortId{0});
  EXPECT_FALSE(g.is_connected());
  const auto comps = g.components();
  ASSERT_EQ(comps.size(), 2u);  // disjoint sub-clusters (paper objective)
  EXPECT_EQ(comps[0], (std::vector<Dpid>{1, 2}));
  EXPECT_EQ(comps[1], (std::vector<Dpid>{3, 4}));

  g.add_link(2, core::PortId{1}, 3, core::PortId{1});
  EXPECT_TRUE(g.is_connected());
}

// --- AS topology transformation ------------------------------------------

class AsTopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Cluster: 1 - 2 - 3 in a line; owner ASes 10, 20, 30.
    graph.add_switch(1, core::AsNumber{10});
    graph.add_switch(2, core::AsNumber{20});
    graph.add_switch(3, core::AsNumber{30});
    graph.add_link(1, core::PortId{1}, 2, core::PortId{1});
    graph.add_link(2, core::PortId{2}, 3, core::PortId{1});
    // Border peerings: one on switch 1 (peer AS 100), one on switch 3
    // (peer AS 200).
    speaker::Peering p0;
    p0.cluster_as = core::AsNumber{10};
    p0.border_dpid = 1;
    p0.switch_external_port = core::PortId{2};
    p0.expected_peer_as = core::AsNumber{100};
    speaker.add_peering(core::PortId{0}, p0);
    speaker::Peering p1;
    p1.cluster_as = core::AsNumber{30};
    p1.border_dpid = 3;
    p1.switch_external_port = core::PortId{2};
    p1.expected_peer_as = core::AsNumber{200};
    speaker.add_peering(core::PortId{1}, p1);
  }

  ExternalRoute route(speaker::PeeringId id, std::vector<std::uint32_t> path) {
    ExternalRoute r;
    r.peering = id;
    std::vector<core::AsNumber> hops;
    for (const auto as : path) hops.emplace_back(as);
    bgp::PathAttributes attrs;
    attrs.as_path = bgp::AsPath{std::move(hops)};
    r.attributes = bgp::AttrSetRef::intern(std::move(attrs));
    return r;
  }

  SwitchGraph graph;
  // Speaker is only used as a peering registry here (no network attach).
  speaker::ClusterBgpSpeaker speaker;
};

TEST_F(AsTopologyTest, SingleEgressAllSwitchesRoute) {
  AsTopologyGraph topo{graph, speaker};
  const auto d = topo.decide({route(0, {100, 99})}, std::nullopt);
  ASSERT_TRUE(d.reachable(1));
  ASSERT_TRUE(d.reachable(2));
  ASSERT_TRUE(d.reachable(3));
  EXPECT_EQ(d.hops.at(1).kind, PrefixDecision::HopKind::kEgress);
  EXPECT_EQ(d.hops.at(1).egress, 0u);
  EXPECT_EQ(d.hops.at(2).kind, PrefixDecision::HopKind::kNextSwitch);
  EXPECT_EQ(d.hops.at(2).next_switch, 1u);
  EXPECT_EQ(d.hops.at(3).next_switch, 2u);
  // AS paths: from switch 3 the cluster segment is 30 20 10 then 100 99.
  EXPECT_EQ(d.as_paths.at(3).to_string(), "30 20 10 100 99");
  EXPECT_EQ(d.as_paths.at(1).to_string(), "10 100 99");
}

TEST_F(AsTopologyTest, NearestEgressWinsPerSwitch) {
  AsTopologyGraph topo{graph, speaker};
  const auto d =
      topo.decide({route(0, {100, 99}), route(1, {200, 99})}, std::nullopt);
  EXPECT_EQ(d.hops.at(1).kind, PrefixDecision::HopKind::kEgress);
  EXPECT_EQ(d.hops.at(1).egress, 0u);
  EXPECT_EQ(d.hops.at(3).kind, PrefixDecision::HopKind::kEgress);
  EXPECT_EQ(d.hops.at(3).egress, 1u);
  // The middle switch tie-breaks deterministically (lower dpid side).
  EXPECT_EQ(d.hops.at(2).kind, PrefixDecision::HopKind::kNextSwitch);
  EXPECT_EQ(d.hops.at(2).next_switch, 1u);
}

TEST_F(AsTopologyTest, ShorterExternalPathPreferred) {
  AsTopologyGraph topo{graph, speaker};
  // Egress at switch 1 has a much longer external path; switch 2 should
  // prefer crossing the cluster to switch 3.
  const auto d = topo.decide(
      {route(0, {100, 99, 98, 97, 96}), route(1, {200})}, std::nullopt);
  EXPECT_EQ(d.hops.at(2).next_switch, 3u);
  EXPECT_EQ(d.as_paths.at(2).to_string(), "20 30 200");
}

TEST_F(AsTopologyTest, LoopAvoidancePrunesClusterCrossingRoutes) {
  AsTopologyGraph topo{graph, speaker};
  // The external route's path re-enters the cluster (contains AS 20):
  // using it could loop traffic back into the cluster. Must be pruned.
  const auto d = topo.decide({route(0, {100, 20, 99})}, std::nullopt);
  EXPECT_EQ(d.pruned_routes, 1u);
  EXPECT_FALSE(d.reachable(1));
  EXPECT_FALSE(d.reachable(2));
}

TEST_F(AsTopologyTest, ClusterOriginWinsOverExternal) {
  AsTopologyGraph topo{graph, speaker};
  const auto d = topo.decide({route(0, {100, 99})}, /*origin_switch=*/2);
  EXPECT_EQ(d.hops.at(2).kind, PrefixDecision::HopKind::kLocalOrigin);
  EXPECT_EQ(d.hops.at(1).kind, PrefixDecision::HopKind::kNextSwitch);
  EXPECT_EQ(d.hops.at(1).next_switch, 2u);
  EXPECT_EQ(d.hops.at(3).next_switch, 2u);
  EXPECT_EQ(d.as_paths.at(1).to_string(), "10 20");
  EXPECT_EQ(d.as_paths.at(2).to_string(), "20");
}

TEST_F(AsTopologyTest, PartitionedClusterUsesOwnEgress) {
  // Cut the 1-2 link: switch 1 is alone, switches 2-3 together.
  graph.set_port_state(1, core::PortId{1}, false);
  AsTopologyGraph topo{graph, speaker};
  const auto d =
      topo.decide({route(0, {100, 99}), route(1, {200, 99})}, std::nullopt);
  // Sub-cluster A egresses via peering 0, sub-cluster B via peering 1 —
  // the paper's disjoint sub-cluster support.
  EXPECT_EQ(d.hops.at(1).egress, 0u);
  EXPECT_EQ(d.hops.at(3).egress, 1u);
  EXPECT_EQ(d.hops.at(2).next_switch, 3u);
}

TEST_F(AsTopologyTest, NoRoutesNoReachability) {
  AsTopologyGraph topo{graph, speaker};
  const auto d = topo.decide({}, std::nullopt);
  EXPECT_TRUE(d.hops.empty());
  EXPECT_TRUE(d.as_paths.empty());
}

TEST_F(AsTopologyTest, CompileFlowsMapsHopsToPorts) {
  AsTopologyGraph topo{graph, speaker};
  const auto d = topo.decide({route(0, {100, 99})}, std::nullopt);
  const auto flows = compile_flows(d, graph, speaker, {});
  ASSERT_EQ(flows.actions.size(), 3u);
  // Switch 1 egresses out its external port 2.
  EXPECT_EQ(flows.actions.at(1),
            sdn::FlowAction::output(core::PortId{2}));
  // Switch 2 forwards towards switch 1 (its port 1).
  EXPECT_EQ(flows.actions.at(2), sdn::FlowAction::output(core::PortId{1}));
  EXPECT_EQ(flows.actions.at(3), sdn::FlowAction::output(core::PortId{1}));
}

TEST_F(AsTopologyTest, CompileFlowsLocalOriginWithHost) {
  AsTopologyGraph topo{graph, speaker};
  const auto d = topo.decide({}, /*origin_switch=*/2);
  std::map<sdn::Dpid, core::PortId> host_ports{{2, core::PortId{7}}};
  const auto flows = compile_flows(d, graph, speaker, host_ports);
  EXPECT_EQ(flows.actions.at(2), sdn::FlowAction::output(core::PortId{7}));
  // Without a host the origin drops.
  const auto flows2 = compile_flows(d, graph, speaker, {});
  EXPECT_EQ(flows2.actions.at(2).type, sdn::ActionType::kDrop);
}

// --- sub-cluster rule (pass 2 of the transformation) ----------------------

class SubClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two disjoint sub-clusters under one controller: {1} and {2}
    // (no intra-cluster link at all). Border peerings on both.
    graph.add_switch(1, core::AsNumber{10});
    graph.add_switch(2, core::AsNumber{20});
    speaker::Peering p0;
    p0.cluster_as = core::AsNumber{10};
    p0.border_dpid = 1;
    p0.switch_external_port = core::PortId{1};
    p0.expected_peer_as = core::AsNumber{100};
    speaker.add_peering(core::PortId{0}, p0);
    speaker::Peering p1;
    p1.cluster_as = core::AsNumber{20};
    p1.border_dpid = 2;
    p1.switch_external_port = core::PortId{1};
    p1.expected_peer_as = core::AsNumber{200};
    speaker.add_peering(core::PortId{1}, p1);
  }

  ExternalRoute route(speaker::PeeringId id, std::vector<std::uint32_t> path) {
    ExternalRoute r;
    r.peering = id;
    std::vector<core::AsNumber> hops;
    for (const auto as : path) hops.emplace_back(as);
    bgp::PathAttributes attrs;
    attrs.as_path = bgp::AsPath{std::move(hops)};
    r.attributes = bgp::AttrSetRef::intern(std::move(attrs));
    return r;
  }

  SwitchGraph graph;
  speaker::ClusterBgpSpeaker speaker;
};

TEST_F(SubClusterTest, LegacyBridgeConnectsSubClusters) {
  AsTopologyGraph topo{graph, speaker};
  // Sub-cluster {2} has a clean egress; sub-cluster {1} only hears a route
  // whose legacy path crosses member AS 20 — admissible, because {2} is
  // reachable without crossing the cluster.
  const auto d = topo.decide(
      {route(1, {200, 99}), route(0, {100, 20, 200, 99})}, std::nullopt);
  EXPECT_EQ(d.pruned_routes, 0u);
  ASSERT_TRUE(d.reachable(1));
  ASSERT_TRUE(d.reachable(2));
  EXPECT_EQ(d.hops.at(1).kind, PrefixDecision::HopKind::kEgress);
  EXPECT_EQ(d.hops.at(1).egress, 0u);
  EXPECT_EQ(d.as_paths.at(1).to_string(), "10 100 20 200 99");
}

TEST_F(SubClusterTest, CrossingRouteIntoUnreachableSubClusterPruned) {
  AsTopologyGraph topo{graph, speaker};
  // Only the crossing route exists; the crossed sub-cluster {2} has no
  // clean egress of its own, so the bridge is unsafe and must be pruned.
  const auto d = topo.decide({route(0, {100, 20, 99})}, std::nullopt);
  EXPECT_EQ(d.pruned_routes, 1u);
  EXPECT_FALSE(d.reachable(1));
}

TEST_F(SubClusterTest, CrossingRouteIgnoredWhenOwnEgressExists) {
  AsTopologyGraph topo{graph, speaker};
  // Sub-cluster {1} has its own clean egress; the crossing alternative is
  // pruned (counted), and the clean route wins.
  const auto d = topo.decide(
      {route(0, {100, 99}), route(0, {100, 20, 200, 99}), route(1, {200, 99})},
      std::nullopt);
  EXPECT_EQ(d.pruned_routes, 1u);
  EXPECT_EQ(d.as_paths.at(1).to_string(), "10 100 99");
}

TEST_F(SubClusterTest, BridgingDisabledPrunesEverything) {
  AsTopologyGraph topo{graph, speaker, /*allow_subcluster_bridging=*/false};
  const auto d = topo.decide(
      {route(1, {200, 99}), route(0, {100, 20, 200, 99})}, std::nullopt);
  EXPECT_EQ(d.pruned_routes, 1u);
  EXPECT_FALSE(d.reachable(1));  // the naive rule isolates sub-cluster {1}
  EXPECT_TRUE(d.reachable(2));
}

TEST_F(SubClusterTest, FixpointBridgesChainsOfSubClusters) {
  // Third singleton sub-cluster {3}; its only route crosses member AS 10,
  // whose sub-cluster is itself bridged (crossing AS 20). Requires two
  // bridging passes: {2} settles in pass 1, {1} in pass 2, {3} in pass 3.
  graph.add_switch(3, core::AsNumber{30});
  speaker::Peering p2;
  p2.cluster_as = core::AsNumber{30};
  p2.border_dpid = 3;
  p2.switch_external_port = core::PortId{1};
  p2.expected_peer_as = core::AsNumber{300};
  speaker.add_peering(core::PortId{2}, p2);

  AsTopologyGraph topo{graph, speaker};
  const auto d = topo.decide({route(1, {200, 99}),
                              route(0, {100, 20, 200, 99}),
                              route(2, {300, 10, 100, 20, 200, 99})},
                             std::nullopt);
  EXPECT_EQ(d.pruned_routes, 0u);
  EXPECT_TRUE(d.reachable(1));
  EXPECT_TRUE(d.reachable(2));
  EXPECT_TRUE(d.reachable(3));
  EXPECT_EQ(d.as_paths.at(3).to_string(), "30 300 10 100 20 200 99");
}

TEST_F(SubClusterTest, SameComponentCrossingAlwaysPruned) {
  // Join the two switches into one component: now a route through AS 20
  // arriving at switch 1 is an intra-component loop risk, never admitted.
  graph.add_link(1, core::PortId{2}, 2, core::PortId{2});
  AsTopologyGraph topo{graph, speaker};
  const auto d = topo.decide({route(0, {100, 20, 99})}, std::nullopt);
  EXPECT_EQ(d.pruned_routes, 1u);
  EXPECT_FALSE(d.reachable(1));
  EXPECT_FALSE(d.reachable(2));
}

}  // namespace
}  // namespace bgpsdn::controller
