// MRT (RFC 6396) export/import: round-trips, framing robustness, and the
// collector-tape conversion.
#include <gtest/gtest.h>

#include "bgp/mrt.hpp"
#include "bgp/wire.hpp"

namespace bgpsdn::bgp {
namespace {

MrtRecord sample_record(std::uint32_t ts, std::uint32_t peer_as) {
  UpdateMessage u;
  u.attributes.as_path = AsPath{{core::AsNumber{peer_as}, core::AsNumber{1}}};
  u.attributes.next_hop = net::Ipv4Addr{172, 16, 0, 1};
  u.nlri.push_back(*net::Prefix::parse("10.0.0.0/16"));

  MrtRecord rec;
  rec.timestamp_s = ts;
  rec.peer_as = core::AsNumber{peer_as};
  rec.local_as = core::AsNumber{64512};
  rec.peer_ip = net::Ipv4Addr{198, 18, 0, 1};
  rec.local_ip = net::Ipv4Addr{192, 0, 2, 1};
  rec.bgp_message = encode(u);
  return rec;
}

TEST(Mrt, RoundTripPreservesRecords) {
  const std::vector<MrtRecord> records{sample_record(100, 2),
                                       sample_record(160, 3)};
  const auto data = write_mrt(records);
  const auto back = read_mrt(data);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ((*back)[i].timestamp_s, records[i].timestamp_s);
    EXPECT_EQ((*back)[i].peer_as, records[i].peer_as);
    EXPECT_EQ((*back)[i].local_as, records[i].local_as);
    EXPECT_EQ((*back)[i].peer_ip, records[i].peer_ip);
    EXPECT_EQ((*back)[i].bgp_message, records[i].bgp_message);
  }
}

TEST(Mrt, EmbeddedBgpMessagesDecodable) {
  const auto data = write_mrt({sample_record(5, 7)});
  const auto back = read_mrt(data);
  ASSERT_TRUE(back.has_value());
  const auto msg = decode((*back)[0].bgp_message);
  ASSERT_TRUE(msg.has_value());
  const auto& update = std::get<UpdateMessage>(*msg);
  EXPECT_EQ(update.attributes.as_path.to_string(), "7 1");
  EXPECT_EQ(update.nlri[0].to_string(), "10.0.0.0/16");
}

TEST(Mrt, EmptyStreamIsValid) {
  const auto back = read_mrt({});
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Mrt, TruncatedFramingRejected) {
  auto data = write_mrt({sample_record(5, 7)});
  data.resize(data.size() - 3);
  EXPECT_FALSE(read_mrt(data).has_value());
}

TEST(Mrt, UnknownRecordTypesSkipped) {
  // Hand-build an unknown-type record followed by a valid one.
  ByteWriter w;
  w.u32(1);   // timestamp
  w.u16(13);  // TABLE_DUMP_V2 (not supported here)
  w.u16(1);
  w.u32(4);
  w.u32(0xdeadbeef);
  const auto valid = write_mrt({sample_record(9, 2)});
  w.bytes(valid);
  const auto back = read_mrt(w.take());
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].timestamp_s, 9u);
}

TEST(Mrt, CollectorTapeConverts) {
  std::vector<RouteObservation> tape;
  tape.push_back({core::TimePoint::origin() + core::Duration::seconds(12),
                  core::AsNumber{3}, true, *net::Prefix::parse("10.0.0.0/16"),
                  AsPath{{core::AsNumber{3}, core::AsNumber{1}}}});
  tape.push_back({core::TimePoint::origin() + core::Duration::seconds(40),
                  core::AsNumber{3}, false, *net::Prefix::parse("10.0.0.0/16"),
                  {}});

  const auto records = collector_to_mrt(tape);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].timestamp_s, 12u);
  EXPECT_EQ(records[1].timestamp_s, 40u);
  EXPECT_EQ(records[0].peer_as.value(), 3u);

  // Full pipeline: tape -> MRT bytes -> records -> BGP messages.
  const auto back = read_mrt(write_mrt(records));
  ASSERT_TRUE(back.has_value());
  const auto announce = decode((*back)[0].bgp_message);
  ASSERT_TRUE(announce.has_value());
  EXPECT_EQ(std::get<UpdateMessage>(*announce).nlri.size(), 1u);
  const auto withdraw = decode((*back)[1].bgp_message);
  ASSERT_TRUE(withdraw.has_value());
  EXPECT_EQ(std::get<UpdateMessage>(*withdraw).withdrawn.size(), 1u);
}

}  // namespace
}  // namespace bgpsdn::bgp
