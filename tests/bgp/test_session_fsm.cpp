// Session FSM tests over an in-memory transport: establishment, keepalive
// maintenance, hold-timer expiry, notifications, decode errors, restart.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/session.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"

namespace bgpsdn::bgp {
namespace {

/// SessionHost wired straight to a peer session through the event loop.
class Harness : public SessionHost {
 public:
  Harness(core::EventLoop& loop, core::Logger& log, core::Rng& rng,
          std::string name)
      : loop_{loop}, log_{log}, rng_{rng}, name_{std::move(name)} {}

  void connect_to(Harness& peer) { peer_ = &peer; }
  void set_link_up(bool up) { link_up_ = up; }

  void session_transmit(Session&, net::Bytes wire) override {
    if (!link_up_ || peer_ == nullptr || peer_->session == nullptr) return;
    Harness* peer = peer_;
    loop_.schedule(core::Duration::millis(1), [peer, wire = std::move(wire)] {
      if (peer->link_up_ && peer->session) peer->session->receive(wire);
    });
  }
  void session_established(Session&) override { ++established_count; }
  void session_down(Session&, const std::string& reason) override {
    ++down_count;
    last_reason = reason;
  }
  void session_update(Session&, const UpdateMessage& update) override {
    updates.push_back(update);
  }
  core::EventLoop& session_loop() override { return loop_; }
  core::Rng& session_rng() override { return rng_; }
  core::Logger& session_logger() override { return log_; }
  std::string session_log_name() const override { return name_; }

  std::unique_ptr<Session> session;
  int established_count{0};
  int down_count{0};
  std::string last_reason;
  std::vector<UpdateMessage> updates;

 private:
  core::EventLoop& loop_;
  core::Logger& log_;
  core::Rng& rng_;
  std::string name_;
  Harness* peer_{nullptr};
  bool link_up_{true};
};

class SessionFsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a = std::make_unique<Harness>(loop, log, rng, "a");
    b = std::make_unique<Harness>(loop, log, rng, "b");
    a->connect_to(*b);
    b->connect_to(*a);
    a->session = std::make_unique<Session>(*a, config(1, 65001, 65002));
    b->session = std::make_unique<Session>(*b, config(2, 65002, 65001));
  }

  SessionConfig config(std::uint32_t id, std::uint32_t local_as,
                       std::uint32_t peer_as) {
    SessionConfig c;
    c.id = core::SessionId{id};
    c.local_as = core::AsNumber{local_as};
    c.local_id = net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(id)};
    c.local_address = net::Ipv4Addr{172, 16, 0, static_cast<std::uint8_t>(id)};
    c.remote_address = net::Ipv4Addr{172, 16, 0, static_cast<std::uint8_t>(3 - id)};
    c.expected_peer_as = core::AsNumber{peer_as};
    c.timers.hold = core::Duration::seconds(9);
    c.timers.keepalive = core::Duration::seconds(3);
    return c;
  }

  void run(core::Duration d) { loop.run(loop.now() + d); }

  core::EventLoop loop;
  core::Logger log;
  core::Rng rng{3};
  std::unique_ptr<Harness> a, b;
};

TEST_F(SessionFsmTest, EstablishesBothSides) {
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(2));
  EXPECT_TRUE(a->session->established());
  EXPECT_TRUE(b->session->established());
  EXPECT_EQ(a->established_count, 1);
  EXPECT_EQ(b->established_count, 1);
  EXPECT_EQ(a->session->peer_as().value(), 65002u);
  EXPECT_EQ(b->session->peer_as().value(), 65001u);
  EXPECT_TRUE(a->session->codec().four_octet_as);
}

TEST_F(SessionFsmTest, OneSidedStartStillEstablishes) {
  // Only A initiates; B's OPEN is triggered by receiving A's (simultaneous
  // open handling in Connect state).
  a->session->start();
  b->session->start();  // both must at least be started (listening)
  run(core::Duration::seconds(2));
  EXPECT_TRUE(a->session->established());
}

TEST_F(SessionFsmTest, WrongPeerAsRejected) {
  b->session = std::make_unique<Session>(*b, config(2, 64999, 65001));
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(3));
  // A expected 65002 but got 64999: NOTIFICATION and no establishment.
  EXPECT_FALSE(a->session->established());
  EXPECT_GT(a->session->counters().notifications_tx, 0u);
}

TEST_F(SessionFsmTest, UpdatesFlowWhenEstablished) {
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(2));
  UpdateMessage u;
  u.attributes.as_path = AsPath{{core::AsNumber{65001}}};
  u.attributes.next_hop = net::Ipv4Addr{172, 16, 0, 1};
  u.nlri = {*net::Prefix::parse("10.0.0.0/16")};
  a->session->send_update(u);
  run(core::Duration::seconds(1));
  ASSERT_EQ(b->updates.size(), 1u);
  EXPECT_EQ(b->updates[0], u);
  EXPECT_EQ(a->session->counters().updates_tx, 1u);
  EXPECT_EQ(b->session->counters().updates_rx, 1u);
}

TEST_F(SessionFsmTest, SendUpdateIgnoredWhenNotEstablished) {
  UpdateMessage u;
  u.nlri = {*net::Prefix::parse("10.0.0.0/16")};
  a->session->send_update(u);
  run(core::Duration::seconds(1));
  EXPECT_EQ(a->session->counters().updates_tx, 0u);
}

TEST_F(SessionFsmTest, KeepalivesMaintainSession) {
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(60));  // many hold periods
  EXPECT_TRUE(a->session->established());
  EXPECT_TRUE(b->session->established());
  EXPECT_GT(a->session->counters().keepalives_rx, 5u);
  EXPECT_EQ(a->down_count, 0);
}

TEST_F(SessionFsmTest, HoldTimerExpiresWhenPeerSilent) {
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(2));
  ASSERT_TRUE(a->session->established());
  // Cut B's transmissions (A hears nothing more).
  b->set_link_up(false);
  run(core::Duration::seconds(30));
  EXPECT_FALSE(a->session->established());
  EXPECT_EQ(a->down_count, 1);
  EXPECT_NE(a->last_reason.find("hold timer"), std::string::npos);
}

TEST_F(SessionFsmTest, AutoRestartAfterFailure) {
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(2));
  b->set_link_up(false);
  run(core::Duration::seconds(30));
  ASSERT_FALSE(a->session->established());
  // Heal the link; hold-timer failure scheduled an automatic reconnect.
  b->set_link_up(true);
  // B's session also dropped (its hold timer saw silence from A's
  // perspective? B kept hearing A. Stop B manually to resync both sides).
  b->session->stop("test reset");
  b->session->start();
  run(core::Duration::seconds(40));
  EXPECT_TRUE(a->session->established());
  EXPECT_TRUE(b->session->established());
}

TEST_F(SessionFsmTest, StopIsQuietAndIdempotent) {
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(2));
  a->session->stop("admin");
  EXPECT_EQ(a->down_count, 1);
  a->session->stop("admin again");
  EXPECT_EQ(a->down_count, 1);  // no double notification
  EXPECT_EQ(a->session->state(), SessionState::kIdle);
}

TEST_F(SessionFsmTest, GarbageBytesTriggerNotification) {
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(2));
  ASSERT_TRUE(b->session->established());
  b->session->receive(std::vector<std::byte>{std::byte{1}, std::byte{2}});
  EXPECT_FALSE(b->session->established());
  EXPECT_EQ(b->session->counters().decode_errors, 1u);
  run(core::Duration::seconds(1));
  // A received the NOTIFICATION and dropped too.
  EXPECT_FALSE(a->session->established());
  EXPECT_GT(a->session->counters().notifications_rx, 0u);
}

TEST_F(SessionFsmTest, FlapCounterTracksDowns) {
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(2));
  a->session->stop("1");
  a->session->start();
  run(core::Duration::seconds(2));
  a->session->stop("2");
  EXPECT_EQ(a->session->counters().flaps, 2u);
}

TEST_F(SessionFsmTest, StopResetsNegotiatedHoldTime) {
  // Regression: stop() must forget the dead connection's negotiated hold
  // time. A restarted session that kept a short negotiated hold (4 s here)
  // would expire its OpenSent hold timer off the stale value instead of the
  // configured 9 s and NOTIFY/flap while the peer is merely slow to return.
  auto cb = config(2, 65002, 65001);
  cb.timers.hold = core::Duration::seconds(4);
  b->session = std::make_unique<Session>(*b, cb);
  a->session->start();
  b->session->start();
  run(core::Duration::seconds(2));
  ASSERT_TRUE(a->session->established());
  ASSERT_EQ(a->session->negotiated_hold_s(), 4u);

  a->session->stop("maintenance");
  EXPECT_EQ(a->session->negotiated_hold_s(), 0u);

  // Restart towards a dead peer: only the configured hold may govern.
  a->set_link_up(false);
  b->set_link_up(false);
  const auto notifications_before = a->session->counters().notifications_tx;
  a->session->start();
  run(core::Duration::seconds(5));  // past the stale 4 s, short of 9 s
  EXPECT_EQ(a->session->state(), SessionState::kOpenSent);
  EXPECT_EQ(a->session->counters().notifications_tx, notifications_before);
}

TEST_F(SessionFsmTest, StateNamesAreStable) {
  EXPECT_STREQ(to_string(SessionState::kIdle), "Idle");
  EXPECT_STREQ(to_string(SessionState::kEstablished), "Established");
}

}  // namespace
}  // namespace bgpsdn::bgp
