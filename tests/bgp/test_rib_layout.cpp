// Compact-vs-reference RIB layout equivalence at the unit level, plus the
// supporting structures the compact layout is built from: the open-addressing
// PrefixTable (fuzzed against std::map), the refcounted AttrRegistry, and the
// Adj-RIB-In slab defragmenter. The framework-level byte-diff suite lives in
// tests/framework/test_rib_layout_equivalence.cpp; these tests pin the data
// structures in isolation so a divergence there points at the exact class.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "bgp/message.hpp"
#include "bgp/rib.hpp"
#include "bgp/wire.hpp"

namespace bgpsdn::bgp {
namespace {

net::Prefix prefix_of(std::uint32_t i) {
  return net::Prefix{net::Ipv4Addr{(10u << 24) | (i << 8)}, 24};
}

Route make_route(std::uint32_t prefix, std::uint32_t session,
                 std::vector<std::uint32_t> path, std::int64_t at_ns = 1000) {
  Route r;
  r.prefix = prefix_of(prefix);
  std::vector<core::AsNumber> hops;
  for (const auto as : path) hops.emplace_back(as);
  PathAttributes attrs;
  attrs.as_path = AsPath{std::move(hops)};
  attrs.next_hop = net::Ipv4Addr{172, 16, 0, 1};
  r.attributes = AttrSetRef::intern(std::move(attrs));
  r.learned_from = core::SessionId{session};
  r.peer_bgp_id = net::Ipv4Addr{
      10, 0, 0, static_cast<std::uint8_t>(session == 0 ? 1 : session)};
  r.peer_address = net::Ipv4Addr{172, 16, static_cast<std::uint8_t>(session), 1};
  r.installed_at = core::TimePoint::from_nanos(at_ns);
  return r;
}

std::string route_key(const Route& r) {
  return r.prefix.to_string() + " s" + std::to_string(r.learned_from.value()) +
         " a" + r.attributes->to_string() + " id" +
         std::to_string(r.peer_bgp_id.bits()) + " pa" +
         std::to_string(r.peer_address.bits()) + " t" +
         std::to_string(r.installed_at.nanos_since_origin());
}

// --- PrefixTable ---------------------------------------------------------

struct TableVal {
  std::uint32_t v{0xFFFFFFFFu};
  static TableVal empty() { return {}; }
  bool is_empty() const { return v == 0xFFFFFFFFu; }
};

TEST(PrefixTableFuzz, MatchesStdMapUnderChurn) {
  detail::PrefixTable<TableVal> table;
  std::map<net::Prefix, std::uint32_t> mirror;
  std::mt19937_64 rng{42};
  for (std::uint32_t op = 0; op < 50'000; ++op) {
    // A key universe of 512 prefixes at 50/35/15 put/erase/find keeps the
    // table churning through grow, backshift deletion and probe chains.
    const auto key = prefix_of(static_cast<std::uint32_t>(rng() % 512));
    const auto action = rng() % 100;
    if (action < 50) {
      const auto value = static_cast<std::uint32_t>(rng() % 1'000'000);
      table.put(key, TableVal{value});
      mirror[key] = value;
    } else if (action < 85) {
      const bool erased = table.erase(key);
      EXPECT_EQ(erased, mirror.erase(key) > 0) << "op " << op;
    } else {
      const auto* found = table.find(key);
      const auto it = mirror.find(key);
      ASSERT_EQ(found != nullptr, it != mirror.end()) << "op " << op;
      if (found != nullptr) {
        EXPECT_EQ(found->v, it->second) << "op " << op;
      }
    }
    EXPECT_EQ(table.size(), mirror.size());
  }
  // Full-table agreement at the end: every mirror key present with the right
  // value, and sorted_keys() is exactly the mirror's key sequence.
  const auto keys = table.sorted_keys();
  ASSERT_EQ(keys.size(), mirror.size());
  std::size_t i = 0;
  for (const auto& [key, value] : mirror) {
    EXPECT_EQ(keys[i++], key);
    const auto* found = table.find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->v, value);
  }
}

// --- AttrRegistry --------------------------------------------------------

AttrSetRef bundle(std::uint32_t tag) {
  PathAttributes attrs;
  attrs.as_path = AsPath{{core::AsNumber{tag + 1}}};
  attrs.next_hop = net::Ipv4Addr{172, 16, 0, 1};
  return AttrSetRef::intern(std::move(attrs));
}

TEST(AttrRegistry, DeduplicatesByCanonicalBundle) {
  AttrRegistry reg;
  const auto a = bundle(1);
  const auto idx = reg.acquire(a);
  EXPECT_EQ(reg.acquire(bundle(1)), idx);  // same canonical bundle
  EXPECT_NE(reg.acquire(bundle(2)), idx);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.at(idx).get(), a.get());
}

TEST(AttrRegistry, ReleaseFreesAtZeroAndReusesSlots) {
  AttrRegistry reg;
  const auto idx = reg.acquire(bundle(1));
  reg.retain(idx);
  reg.release(idx);
  EXPECT_EQ(reg.size(), 1u);  // one reference still held
  reg.release(idx);
  EXPECT_EQ(reg.size(), 0u);
  // A fresh bundle reuses the freed entry slot instead of growing the slab.
  const auto again = reg.acquire(bundle(3));
  EXPECT_EQ(again, idx);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(AttrRegistry, SurvivesInterleavedChurn) {
  AttrRegistry reg;
  std::map<std::uint32_t, std::uint32_t> held;  // tag -> index
  std::mt19937_64 rng{7};
  for (std::uint32_t op = 0; op < 20'000; ++op) {
    const auto tag = static_cast<std::uint32_t>(rng() % 300);
    const auto it = held.find(tag);
    if (it == held.end()) {
      held[tag] = reg.acquire(bundle(tag));
    } else {
      reg.release(it->second);
      held.erase(it);
    }
    EXPECT_EQ(reg.size(), held.size());
  }
  // Every held index still resolves to its own bundle (backshift deletion in
  // the dedup slot index must never detach a live entry).
  for (const auto& [tag, index] : held) {
    EXPECT_EQ(reg.at(index).get(), bundle(tag).get()) << "tag " << tag;
  }
  // And re-acquiring a held bundle finds the existing entry, not a new one.
  for (const auto& [tag, index] : held) {
    EXPECT_EQ(reg.acquire(bundle(tag)), index);
    reg.release(index);
  }
}

TEST(AttrRegistry, BytesDependOnlyOnSequence) {
  // The dedup index hashes pointer values, but the footprint must depend
  // only on the acquire/release sequence (the determinism contract).
  AttrRegistry a;
  AttrRegistry b;
  for (std::uint32_t i = 0; i < 500; ++i) {
    a.acquire(bundle(i));
    b.acquire(bundle(i));
    EXPECT_EQ(a.bytes(), b.bytes());
  }
  EXPECT_GT(a.bytes(), 0u);
}

// --- Adj-RIB-In equivalence ----------------------------------------------

class RibInPair {
 public:
  bool put(const Route& route) {
    const bool compact = compact_.put(route);
    const bool reference = reference_.put(route);
    EXPECT_EQ(compact, reference);
    return compact;
  }
  void erase(std::uint32_t prefix, std::uint32_t session) {
    EXPECT_EQ(compact_.erase(prefix_of(prefix), core::SessionId{session}),
              reference_.erase(prefix_of(prefix), core::SessionId{session}));
  }
  void erase_session(std::uint32_t session) {
    const auto compact = compact_.erase_session(core::SessionId{session});
    const auto reference = reference_.erase_session(core::SessionId{session});
    EXPECT_EQ(compact, reference);
  }
  void expect_equal() const {
    EXPECT_EQ(compact_.route_count(), reference_.route_count());
    const auto prefixes = reference_.prefixes();
    EXPECT_EQ(compact_.prefixes(), prefixes);
    for (const auto& prefix : prefixes) {
      // candidates() pointers are scratch in the compact layout: stringify
      // the compact view before touching the reference RIB.
      std::vector<std::string> compact_view;
      compact_.for_each_candidate(
          prefix, [&](const Route& r) { compact_view.push_back(route_key(r)); });
      const auto ref_cands = reference_.candidates(prefix);
      ASSERT_EQ(compact_view.size(), ref_cands.size()) << prefix.to_string();
      for (std::size_t i = 0; i < ref_cands.size(); ++i) {
        EXPECT_EQ(compact_view[i], route_key(*ref_cands[i]))
            << prefix.to_string() << " #" << i;
      }
    }
  }
  const AdjRibIn& compact() const { return compact_; }

 private:
  AdjRibIn compact_{RibLayout::kCompact};
  AdjRibIn reference_{RibLayout::kReference};
};

TEST(RibLayoutEquivalence, AdjRibInFuzz) {
  RibInPair pair;
  std::mt19937_64 rng{1234};
  for (std::uint32_t op = 0; op < 20'000; ++op) {
    const auto prefix = static_cast<std::uint32_t>(rng() % 64);
    const auto session = static_cast<std::uint32_t>(1 + rng() % 12);
    const auto action = rng() % 100;
    if (action < 60) {
      // Three path variants per (prefix, session) so puts are a mix of
      // inserts, attribute replacements and no-op re-puts.
      const auto variant = static_cast<std::uint32_t>(rng() % 3);
      pair.put(make_route(prefix, session, {session, variant + 1, prefix + 1},
                          static_cast<std::int64_t>(1000 + op)));
    } else if (action < 90) {
      pair.erase(prefix, session);
    } else {
      pair.erase_session(session);
    }
    if (op % 1000 == 0) pair.expect_equal();
  }
  pair.expect_equal();
}

TEST(RibLayoutEquivalence, AdjRibInFindMatchesAcrossLayouts) {
  AdjRibIn compact{RibLayout::kCompact};
  AdjRibIn reference{RibLayout::kReference};
  const auto route = make_route(3, 5, {5, 9});
  compact.put(route);
  reference.put(route);
  const auto* c = compact.find(prefix_of(3), core::SessionId{5});
  ASSERT_NE(c, nullptr);
  const std::string compact_view = route_key(*c);  // scratch: copy first
  const auto* r = reference.find(prefix_of(3), core::SessionId{5});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(compact_view, route_key(*r));
  EXPECT_EQ(compact.find(prefix_of(3), core::SessionId{6}), nullptr);
  EXPECT_EQ(compact.find(prefix_of(4), core::SessionId{5}), nullptr);
}

TEST(AdjRibInDefrag, SlabChurnPreservesContents) {
  // Grow every prefix's span through 1->2->4->8->16 candidates, then strip
  // back down: the doubling churn strands freed spans of every size, pushing
  // the freelist past the defrag trigger. Contents must match the reference
  // mirror throughout, and the footprint must come back down.
  RibInPair pair;
  for (std::uint32_t prefix = 0; prefix < 48; ++prefix) {
    for (std::uint32_t session = 1; session <= 16; ++session) {
      pair.put(make_route(prefix, session, {session, prefix + 1}));
    }
  }
  pair.expect_equal();
  const auto grown = pair.compact().peak_bytes();
  for (std::uint32_t prefix = 0; prefix < 48; ++prefix) {
    for (std::uint32_t session = 2; session <= 16; ++session) {
      pair.erase(prefix, session);
    }
  }
  pair.expect_equal();
  EXPECT_EQ(pair.compact().route_count(), 48u);
  // After defrag the live footprint is a small fraction of the grown peak:
  // 48 single-candidate spans must not hold on to 16-wide slab rows.
  EXPECT_GT(grown, 48u * 16u * 4u);
  // Refill to prove freed/defragmented spans are reusable.
  for (std::uint32_t prefix = 0; prefix < 48; ++prefix) {
    for (std::uint32_t session = 2; session <= 9; ++session) {
      pair.put(make_route(prefix, session, {session, 7u, prefix + 1}));
    }
  }
  pair.expect_equal();
}

// --- Loc-RIB equivalence -------------------------------------------------

TEST(RibLayoutEquivalence, LocRibFuzz) {
  LocRib compact{RibLayout::kCompact};
  LocRib reference{RibLayout::kReference};
  std::mt19937_64 rng{77};
  for (std::uint32_t op = 0; op < 20'000; ++op) {
    const auto prefix = static_cast<std::uint32_t>(rng() % 64);
    if (rng() % 100 < 70) {
      const auto session = static_cast<std::uint32_t>(1 + rng() % 8);
      const auto variant = static_cast<std::uint32_t>(rng() % 3);
      const auto route = make_route(prefix, session, {session, variant + 1},
                                    static_cast<std::int64_t>(op));
      EXPECT_EQ(compact.install(route), reference.install(route)) << op;
    } else {
      EXPECT_EQ(compact.remove(prefix_of(prefix)),
                reference.remove(prefix_of(prefix)))
          << op;
    }
    EXPECT_EQ(compact.size(), reference.size());
    EXPECT_EQ(compact.generation(), reference.generation());
  }
  EXPECT_EQ(compact.prefixes(), reference.prefixes());
  for (const auto& prefix : reference.prefixes()) {
    const auto* c = compact.find(prefix);
    ASSERT_NE(c, nullptr);
    const std::string compact_view = route_key(*c);  // scratch: copy first
    EXPECT_EQ(compact_view, route_key(*reference.find(prefix)));
  }
}

TEST(RibLayoutEquivalence, LocRibLocalRoutes) {
  // Locally-originated routes carry SessionId::invalid(); both layouts must
  // round-trip them (the compact layout parks them on a shared side entry).
  LocRib compact{RibLayout::kCompact};
  LocRib reference{RibLayout::kReference};
  Route local = make_route(1, 0, {42});
  local.learned_from = core::SessionId::invalid();
  local.peer_bgp_id = net::Ipv4Addr{};
  local.peer_address = net::Ipv4Addr{};
  EXPECT_EQ(compact.install(local), reference.install(local));
  const auto* c = compact.find(prefix_of(1));
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->is_local());
  const std::string compact_view = route_key(*c);
  EXPECT_EQ(compact_view, route_key(*reference.find(prefix_of(1))));
}

// --- Adj-RIB-Out / RibOutStore equivalence -------------------------------

TEST(RibLayoutEquivalence, RibOutStoreFuzz) {
  RibOutStore compact{RibLayout::kCompact};
  RibOutStore reference{RibLayout::kReference};
  constexpr std::uint16_t kCols = 4;
  for (std::uint16_t c = 0; c < kCols; ++c) {
    ASSERT_EQ(compact.add_column(), reference.add_column());
  }
  std::mt19937_64 rng{99};
  for (std::uint32_t op = 0; op < 20'000; ++op) {
    const auto col = static_cast<std::uint16_t>(rng() % kCols);
    const auto prefix = prefix_of(static_cast<std::uint32_t>(rng() % 64));
    const auto action = rng() % 100;
    if (action < 55) {
      const auto attrs = bundle(static_cast<std::uint32_t>(rng() % 8));
      EXPECT_EQ(compact.advertise(col, prefix, attrs),
                reference.advertise(col, prefix, attrs))
          << op;
    } else if (action < 85) {
      EXPECT_EQ(compact.withdraw(col, prefix), reference.withdraw(col, prefix))
          << op;
    } else if (action < 95) {
      const auto* c = compact.advertised(col, prefix);
      const auto* r = reference.advertised(col, prefix);
      ASSERT_EQ(c != nullptr, r != nullptr) << op;
      if (c != nullptr) {
        EXPECT_EQ(c->get(), r->get()) << op;
      }
    } else {
      compact.clear(col);
      reference.clear(col);
    }
    EXPECT_EQ(compact.size(col), reference.size(col));
  }
  for (std::uint16_t c = 0; c < kCols; ++c) {
    EXPECT_EQ(compact.prefixes(c), reference.prefixes(c));
  }
}

TEST(RibLayoutEquivalence, RibOutLateColumnWidening) {
  // Adding a peer after prefixes are advertised forces row widening; the
  // earlier columns' state must be untouched.
  RibOutStore store{RibLayout::kCompact};
  const auto c0 = store.add_column();
  const auto a = bundle(1);
  ASSERT_TRUE(store.advertise(c0, prefix_of(1), a));
  ASSERT_TRUE(store.advertise(c0, prefix_of(2), a));
  const auto c1 = store.add_column();
  EXPECT_EQ(store.advertised(c1, prefix_of(1)), nullptr);
  ASSERT_TRUE(store.advertise(c1, prefix_of(1), bundle(2)));
  ASSERT_NE(store.advertised(c0, prefix_of(1)), nullptr);
  EXPECT_EQ(store.advertised(c0, prefix_of(1))->get(), a.get());
  EXPECT_EQ(store.size(c0), 2u);
  EXPECT_EQ(store.size(c1), 1u);
}

// --- shared registry lifecycle -------------------------------------------

TEST(RibLayoutEquivalence, SharedRegistryDrainsWithRibs) {
  // Two RIBs share one registry; when both drop their routes every handle
  // must come back (leaked refcounts would pin bundles for the whole run).
  auto registry = std::make_shared<AttrRegistry>();
  AdjRibIn rib_in{RibLayout::kCompact, registry};
  LocRib loc{RibLayout::kCompact, registry};
  for (std::uint32_t prefix = 0; prefix < 32; ++prefix) {
    for (std::uint32_t session = 1; session <= 4; ++session) {
      rib_in.put(make_route(prefix, session, {session, prefix + 1}));
    }
    loc.install(make_route(prefix, 1, {1, prefix + 1}));
  }
  EXPECT_GT(registry->size(), 0u);
  for (std::uint32_t prefix = 0; prefix < 32; ++prefix) {
    loc.remove(prefix_of(prefix));
  }
  rib_in.erase_session(core::SessionId{1});
  rib_in.erase_session(core::SessionId{2});
  rib_in.erase_session(core::SessionId{3});
  rib_in.erase_session(core::SessionId{4});
  EXPECT_EQ(registry->size(), 0u);
  EXPECT_EQ(rib_in.route_count(), 0u);
}

// --- batched UPDATE shapes through the wire codec ------------------------

TEST(BatchedUpdateRoundTrip, MultiNlriSharedBundle) {
  // The shape the flush buffer emits: one attribute bundle, many prefixes.
  UpdateMessage u;
  PathAttributes attrs;
  attrs.as_path = AsPath{{core::AsNumber{65001}, core::AsNumber{7}}};
  attrs.next_hop = net::Ipv4Addr{172, 16, 0, 9};
  u.attributes = attrs;
  for (std::uint32_t i = 0; i < 120; ++i) u.nlri.push_back(prefix_of(i));
  for (std::uint32_t i = 200; i < 250; ++i) {
    u.withdrawn.push_back(prefix_of(i));
  }
  const auto wire = encode(u);
  ASSERT_LE(wire.size(), kMaxMessageSize);
  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(std::holds_alternative<UpdateMessage>(*back));
  const auto& got = std::get<UpdateMessage>(*back);
  // Exact order preservation: receivers process NLRI in wire order, so the
  // packer's sorted order must survive the round trip.
  EXPECT_EQ(got.nlri, u.nlri);
  EXPECT_EQ(got.withdrawn, u.withdrawn);
  EXPECT_EQ(got.attributes, u.attributes);
}

TEST(BatchedUpdateRoundTrip, WithdrawOnlyBatch) {
  UpdateMessage u;
  for (std::uint32_t i = 0; i < 300; ++i) u.withdrawn.push_back(prefix_of(i));
  const auto wire = encode(u);
  ASSERT_LE(wire.size(), kMaxMessageSize);
  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  const auto& got = std::get<UpdateMessage>(*back);
  EXPECT_EQ(got.withdrawn, u.withdrawn);
  EXPECT_TRUE(got.nlri.empty());
}

TEST(BatchedUpdateRoundTrip, OversizeBatchSplitsLosslessly) {
  // A batch bigger than one message must split into in-order pieces whose
  // concatenation is the original batch (the receiver-side view).
  UpdateMessage u;
  PathAttributes attrs;
  attrs.as_path = AsPath{{core::AsNumber{65001}}};
  attrs.next_hop = net::Ipv4Addr{172, 16, 0, 9};
  u.attributes = attrs;
  for (std::uint32_t i = 0; i < 1500; ++i) u.nlri.push_back(prefix_of(i));
  ASSERT_GT(encode(u).size(), kMaxMessageSize);
  std::vector<net::Prefix> reassembled;
  for (const auto& piece : split_update(u)) {
    const auto back = decode(encode(piece));
    ASSERT_TRUE(back.has_value());
    const auto& got = std::get<UpdateMessage>(*back);
    reassembled.insert(reassembled.end(), got.nlri.begin(), got.nlri.end());
  }
  EXPECT_EQ(reassembled, u.nlri);
}

}  // namespace
}  // namespace bgpsdn::bgp
