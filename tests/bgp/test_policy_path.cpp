// Policy engine (Gao-Rexford valley-free export, filters, route maps) and
// AsPath semantics.
#include <gtest/gtest.h>

#include "bgp/policy.hpp"

namespace bgpsdn::bgp {
namespace {

TEST(AsPath, PrependBuildsLeftToRight) {
  AsPath p;
  p = p.prepend(core::AsNumber{1});
  p = p.prepend(core::AsNumber{2});
  p = p.prepend(core::AsNumber{3});
  EXPECT_EQ(p.to_string(), "3 2 1");
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.first()->value(), 3u);
  EXPECT_EQ(p.origin_as()->value(), 1u);
}

TEST(AsPath, ContainsAndEmpty) {
  const AsPath p{{core::AsNumber{5}, core::AsNumber{7}}};
  EXPECT_TRUE(p.contains(core::AsNumber{5}));
  EXPECT_FALSE(p.contains(core::AsNumber{6}));
  const AsPath empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.first().has_value());
  EXPECT_FALSE(empty.origin_as().has_value());
  EXPECT_EQ(empty.to_string(), "");
}

TEST(Relationship, ReverseIsInvolution) {
  EXPECT_EQ(reverse(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(reverse(Relationship::kProvider), Relationship::kCustomer);
  EXPECT_EQ(reverse(Relationship::kPeer), Relationship::kPeer);
  for (const auto r : {Relationship::kCustomer, Relationship::kPeer,
                       Relationship::kProvider}) {
    EXPECT_EQ(reverse(reverse(r)), r);
  }
}

TEST(Relationship, DefaultLocalPrefOrdering) {
  EXPECT_GT(default_local_pref(Relationship::kCustomer),
            default_local_pref(Relationship::kPeer));
  EXPECT_GT(default_local_pref(Relationship::kPeer),
            default_local_pref(Relationship::kProvider));
}

PeerPolicy gao(Relationship rel) {
  PeerPolicy p;
  p.mode = PolicyMode::kGaoRexford;
  p.relationship = rel;
  return p;
}

TEST(PolicyEngine, ImportSetsLocalPrefByRelationship) {
  PathAttributes attrs;
  EXPECT_TRUE(PolicyEngine::apply_import(gao(Relationship::kCustomer),
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         attrs));
  EXPECT_EQ(attrs.local_pref.value(), 130u);
  EXPECT_TRUE(PolicyEngine::apply_import(gao(Relationship::kProvider),
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         attrs));
  EXPECT_EQ(attrs.local_pref.value(), 70u);
}

TEST(PolicyEngine, ImportLocalPrefOverride) {
  auto policy = gao(Relationship::kPeer);
  policy.local_pref = 555;
  PathAttributes attrs;
  EXPECT_TRUE(PolicyEngine::apply_import(policy,
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         attrs));
  EXPECT_EQ(attrs.local_pref.value(), 555u);
}

TEST(PolicyEngine, ImportDenyFilter) {
  auto policy = gao(Relationship::kPeer);
  policy.import_deny = {*net::Prefix::parse("10.0.0.0/8")};
  PathAttributes attrs;
  // A more specific inside the denied space is rejected too.
  EXPECT_FALSE(PolicyEngine::apply_import(policy,
                                          *net::Prefix::parse("10.5.0.0/16"),
                                          attrs));
  EXPECT_TRUE(PolicyEngine::apply_import(policy,
                                         *net::Prefix::parse("192.168.0.0/16"),
                                         attrs));
}

TEST(PolicyEngine, ImportRouteMapRewritesAndRejects) {
  auto policy = gao(Relationship::kPeer);
  policy.import_map = [](PathAttributes& attrs) {
    if (attrs.as_path.length() > 3) return false;
    attrs.communities.push_back(42);
    return true;
  };
  PathAttributes short_path;
  short_path.as_path = AsPath{{core::AsNumber{1}}};
  EXPECT_TRUE(PolicyEngine::apply_import(policy,
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         short_path));
  EXPECT_EQ(short_path.communities.back(), 42u);

  PathAttributes long_path;
  long_path.as_path =
      AsPath{{core::AsNumber{1}, core::AsNumber{2}, core::AsNumber{3},
              core::AsNumber{4}}};
  EXPECT_FALSE(PolicyEngine::apply_import(policy,
                                          *net::Prefix::parse("10.0.0.0/16"),
                                          long_path));
}

TEST(PolicyEngine, ValleyFreeExportMatrix) {
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  // (learned-from, export-to) -> allowed?
  const struct {
    Relationship learned;
    Relationship to;
    bool allowed;
  } cases[] = {
      {Relationship::kCustomer, Relationship::kCustomer, true},
      {Relationship::kCustomer, Relationship::kPeer, true},
      {Relationship::kCustomer, Relationship::kProvider, true},
      {Relationship::kPeer, Relationship::kCustomer, true},
      {Relationship::kPeer, Relationship::kPeer, false},
      {Relationship::kPeer, Relationship::kProvider, false},
      {Relationship::kProvider, Relationship::kCustomer, true},
      {Relationship::kProvider, Relationship::kPeer, false},
      {Relationship::kProvider, Relationship::kProvider, false},
  };
  for (const auto& c : cases) {
    PathAttributes attrs;
    attrs.local_pref = 100;
    EXPECT_EQ(PolicyEngine::apply_export(gao(c.to), c.learned, pfx, attrs),
              c.allowed)
        << "learned=" << to_string(c.learned) << " to=" << to_string(c.to);
  }
}

TEST(PolicyEngine, LocalRoutesExportEverywhere) {
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  for (const auto to : {Relationship::kCustomer, Relationship::kPeer,
                        Relationship::kProvider}) {
    PathAttributes attrs;
    EXPECT_TRUE(PolicyEngine::apply_export(gao(to), std::nullopt, pfx, attrs));
  }
}

TEST(PolicyEngine, ExportStripsIbgpOnlyAttributes) {
  PathAttributes attrs;
  attrs.local_pref = 130;
  attrs.med = 10;
  EXPECT_TRUE(PolicyEngine::apply_export(gao(Relationship::kCustomer),
                                         Relationship::kCustomer,
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         attrs));
  EXPECT_FALSE(attrs.local_pref.has_value());
  EXPECT_FALSE(attrs.med.has_value());
}

TEST(PolicyEngine, FullTransitExportsEverything) {
  PeerPolicy policy;  // defaults: full transit, peer
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  PathAttributes attrs;
  EXPECT_TRUE(
      PolicyEngine::apply_export(policy, Relationship::kProvider, pfx, attrs));
  EXPECT_TRUE(PolicyEngine::apply_export(policy, Relationship::kPeer, pfx, attrs));
}

TEST(PolicyEngine, ExportDenyFilter) {
  PeerPolicy policy;
  policy.export_deny = {*net::Prefix::parse("10.0.0.0/8")};
  PathAttributes attrs;
  EXPECT_FALSE(PolicyEngine::apply_export(policy, std::nullopt,
                                          *net::Prefix::parse("10.1.0.0/16"),
                                          attrs));
}

TEST(PolicyEngine, ExportPrepending) {
  PeerPolicy policy;
  policy.prepend = 3;
  PathAttributes attrs;
  attrs.as_path = AsPath{{core::AsNumber{9}}};
  EXPECT_TRUE(PolicyEngine::apply_export(policy, std::nullopt,
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         attrs, core::AsNumber{5}));
  EXPECT_EQ(attrs.as_path.to_string(), "5 5 5 9");
  // Without a local AS (0), prepending is skipped defensively.
  PathAttributes attrs2;
  attrs2.as_path = AsPath{{core::AsNumber{9}}};
  EXPECT_TRUE(PolicyEngine::apply_export(policy, std::nullopt,
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         attrs2));
  EXPECT_EQ(attrs2.as_path.to_string(), "9");
}

TEST(PolicyEngine, PrependSteersTraffic) {
  // Integration: a dual-homed origin prepends on its backup link; the
  // upstream picks the primary even though both paths are one AS hop.
  // (Full-route integration for this lives in test_router_units; here we
  // verify the attribute rewriting end of it.)
  PeerPolicy backup;
  backup.prepend = 2;
  PathAttributes attrs;
  EXPECT_TRUE(PolicyEngine::apply_export(backup, std::nullopt,
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         attrs, core::AsNumber{100}));
  EXPECT_EQ(attrs.as_path.length(), 2u);
}

TEST(PolicyEngine, ExportRouteMap) {
  PeerPolicy policy;
  policy.export_map = [](PathAttributes& attrs) {
    attrs.med = 999;
    return true;
  };
  PathAttributes attrs;
  EXPECT_TRUE(PolicyEngine::apply_export(policy, std::nullopt,
                                         *net::Prefix::parse("10.0.0.0/16"),
                                         attrs));
  EXPECT_EQ(attrs.med.value(), 999u);
}

}  // namespace
}  // namespace bgpsdn::bgp
