// RFC 4271 wire codec tests: round-trips, capability negotiation, and
// rejection of malformed input (truncation fuzzing included).
#include <gtest/gtest.h>

#include "bgp/message.hpp"
#include "bgp/wire.hpp"

namespace bgpsdn::bgp {
namespace {

PathAttributes sample_attrs() {
  PathAttributes a;
  a.origin = Origin::kEgp;
  a.as_path = AsPath{{core::AsNumber{65001}, core::AsNumber{3}, core::AsNumber{1}}};
  a.next_hop = *net::Ipv4Addr::parse("172.16.0.1");
  a.med = 50;
  a.local_pref = 130;
  a.communities = {0x00010002u, 0xffff0001u};
  return a;
}

TEST(MessageCodec, OpenRoundTrip) {
  OpenMessage open;
  open.my_as = core::AsNumber{65010};
  open.hold_time_s = 90;
  open.bgp_id = *net::Ipv4Addr::parse("10.0.0.1");
  open.four_octet_as = true;

  const auto wire = encode(open);
  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(std::holds_alternative<OpenMessage>(*back));
  EXPECT_EQ(std::get<OpenMessage>(*back), open);
}

TEST(MessageCodec, OpenWithFourOctetAsNumber) {
  OpenMessage open;
  open.my_as = core::AsNumber{400000};  // > 16 bit
  open.bgp_id = *net::Ipv4Addr::parse("10.0.0.1");
  open.four_octet_as = true;
  const auto back = decode(encode(open));
  ASSERT_TRUE(back.has_value());
  // The 2-byte field holds AS_TRANS; the capability carries the real ASN.
  EXPECT_EQ(std::get<OpenMessage>(*back).my_as.value(), 400000u);
}

TEST(MessageCodec, OpenWithoutCapabilityFallsBackToTwoOctets) {
  OpenMessage open;
  open.my_as = core::AsNumber{65002};
  open.bgp_id = *net::Ipv4Addr::parse("10.0.0.2");
  open.four_octet_as = false;
  const auto back = decode(encode(open));
  ASSERT_TRUE(back.has_value());
  const auto& m = std::get<OpenMessage>(*back);
  EXPECT_FALSE(m.four_octet_as);
  EXPECT_EQ(m.my_as.value(), 65002u);
}

TEST(MessageCodec, KeepaliveRoundTrip) {
  const auto wire = encode(KeepaliveMessage{});
  EXPECT_EQ(wire.size(), 19u);  // marker 16 + len 2 + type 1
  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::holds_alternative<KeepaliveMessage>(*back));
}

TEST(MessageCodec, NotificationRoundTrip) {
  NotificationMessage n;
  n.code = 6;
  n.subcode = 2;
  n.data = {std::byte{0xde}, std::byte{0xad}};
  const auto back = decode(encode(n));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<NotificationMessage>(*back), n);
}

TEST(MessageCodec, UpdateAnnounceRoundTrip) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.nlri = {*net::Prefix::parse("10.0.0.0/16"), *net::Prefix::parse("10.1.0.0/16")};
  const auto back = decode(encode(u));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<UpdateMessage>(*back), u);
}

TEST(MessageCodec, UpdateWithdrawRoundTrip) {
  UpdateMessage u;
  u.withdrawn = {*net::Prefix::parse("10.0.0.0/16"),
                 *net::Prefix::parse("192.168.4.0/24")};
  const auto back = decode(encode(u));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<UpdateMessage>(*back), u);
}

TEST(MessageCodec, UpdateMixedRoundTrip) {
  UpdateMessage u;
  u.withdrawn = {*net::Prefix::parse("172.20.0.0/14")};
  u.attributes = sample_attrs();
  u.nlri = {*net::Prefix::parse("10.2.0.0/16")};
  const auto back = decode(encode(u));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<UpdateMessage>(*back), u);
}

TEST(MessageCodec, UpdateTwoOctetAsPath) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.attributes.as_path = AsPath{{core::AsNumber{100}, core::AsNumber{200}}};
  u.nlri = {*net::Prefix::parse("10.0.0.0/16")};
  const CodecOptions legacy{.four_octet_as = false};
  const auto back = decode(encode(u, legacy), legacy);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<UpdateMessage>(*back).attributes.as_path,
            u.attributes.as_path);
}

TEST(MessageCodec, TwoOctetEncodingSubstitutesAsTrans) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.attributes.as_path = AsPath{{core::AsNumber{400000}}};
  u.nlri = {*net::Prefix::parse("10.0.0.0/16")};
  const CodecOptions legacy{.four_octet_as = false};
  const auto back = decode(encode(u, legacy), legacy);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<UpdateMessage>(*back).attributes.as_path.hops()[0].value(),
            static_cast<std::uint32_t>(kAsTrans));
}

TEST(MessageCodec, EmptyAsPathRoundTrip) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.attributes.as_path = AsPath{};
  u.nlri = {*net::Prefix::parse("10.0.0.0/16")};
  const auto back = decode(encode(u));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::get<UpdateMessage>(*back).attributes.as_path.empty());
}

TEST(MessageCodec, OptionalAttributesAbsent) {
  UpdateMessage u;
  u.attributes.origin = Origin::kIgp;
  u.attributes.as_path = AsPath{{core::AsNumber{1}}};
  u.attributes.next_hop = *net::Ipv4Addr::parse("1.1.1.1");
  u.nlri = {*net::Prefix::parse("10.0.0.0/16")};
  const auto back = decode(encode(u));
  ASSERT_TRUE(back.has_value());
  const auto& m = std::get<UpdateMessage>(*back);
  EXPECT_FALSE(m.attributes.med.has_value());
  EXPECT_FALSE(m.attributes.local_pref.has_value());
  EXPECT_TRUE(m.attributes.communities.empty());
}

TEST(MessageCodec, OddPrefixLengthsPackCorrectly) {
  // Prefix lengths that do not fall on byte boundaries exercise the
  // variable-length NLRI encoding.
  for (const char* s : {"128.0.0.0/1", "10.64.0.0/11", "10.1.2.0/23",
                        "10.1.2.128/25", "1.2.3.4/32", "0.0.0.0/0"}) {
    UpdateMessage u;
    u.attributes = sample_attrs();
    u.nlri = {*net::Prefix::parse(s)};
    const auto back = decode(encode(u));
    ASSERT_TRUE(back.has_value()) << s;
    EXPECT_EQ(std::get<UpdateMessage>(*back).nlri[0].to_string(), s);
  }
}

TEST(MessageCodec, RejectsBadMarker) {
  auto wire = encode(KeepaliveMessage{});
  wire[3] = std::byte{0x00};
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(MessageCodec, RejectsLengthMismatch) {
  auto wire = encode(KeepaliveMessage{});
  wire.push_back(std::byte{0});  // trailing garbage
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(MessageCodec, RejectsUnknownType) {
  auto wire = encode(KeepaliveMessage{});
  wire[18] = std::byte{9};
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(MessageCodec, RejectsNlriWithoutAttributes) {
  // Hand-build an UPDATE with NLRI but zero path-attribute length.
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  const auto len_pos = w.size();
  w.u16(0);
  w.u8(2);   // UPDATE
  w.u16(0);  // withdrawn len
  w.u16(0);  // path attr len
  w.u8(8);   // NLRI /8
  w.u8(10);
  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size()));
  EXPECT_FALSE(decode(w.take()).has_value());
}

TEST(MessageCodec, RejectsPrefixLengthOver32) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  const auto len_pos = w.size();
  w.u16(0);
  w.u8(2);
  w.u16(2);  // withdrawn len
  w.u8(40);  // bogus prefix length
  w.u8(10);
  w.u16(0);
  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size()));
  EXPECT_FALSE(decode(w.take()).has_value());
}

TEST(MessageCodec, SplitUpdateFitsWithinLimit) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  for (std::uint32_t i = 0; i < 2000; ++i) {
    u.nlri.push_back(net::Prefix{net::Ipv4Addr{(10u << 24) | (i << 8)}, 24});
    u.withdrawn.push_back(net::Prefix{net::Ipv4Addr{(11u << 24) | (i << 8)}, 24});
  }
  ASSERT_GT(encode(u).size(), kMaxMessageSize);

  const auto pieces = split_update(u);
  ASSERT_GT(pieces.size(), 1u);
  std::size_t nlri_total = 0, withdrawn_total = 0;
  for (const auto& piece : pieces) {
    const auto wire = encode(piece);
    EXPECT_LE(wire.size(), kMaxMessageSize);
    // Every piece decodes cleanly.
    const auto back = decode(wire);
    ASSERT_TRUE(back.has_value());
    nlri_total += piece.nlri.size();
    withdrawn_total += piece.withdrawn.size();
    if (!piece.nlri.empty()) {
      EXPECT_EQ(piece.attributes, u.attributes);
    }
  }
  EXPECT_EQ(nlri_total, u.nlri.size());
  EXPECT_EQ(withdrawn_total, u.withdrawn.size());
}

TEST(MessageCodec, SplitUpdatePassthroughWhenSmall) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.nlri = {*net::Prefix::parse("10.0.0.0/16")};
  const auto pieces = split_update(u);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], u);
}

// Truncation fuzz: every strict prefix of a valid message must be rejected
// cleanly (no crash, no acceptance).
class TruncationFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncationFuzz, TruncatedUpdateRejected) {
  UpdateMessage u;
  u.withdrawn = {*net::Prefix::parse("172.20.0.0/14")};
  u.attributes = sample_attrs();
  u.nlri = {*net::Prefix::parse("10.2.0.0/16")};
  auto wire = encode(u);
  const std::size_t cut = GetParam();
  if (cut >= wire.size()) GTEST_SKIP();
  wire.resize(cut);
  // Truncated frames fail the length check.
  EXPECT_FALSE(decode(wire).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllTruncationPoints, TruncationFuzz,
                         ::testing::Range<std::size_t>(0, 90, 1));

// Bit-flip fuzz: flipping any single byte must never crash the decoder.
class BitFlipFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitFlipFuzz, NoCrashOnCorruption) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.nlri = {*net::Prefix::parse("10.2.0.0/16")};
  auto wire = encode(u);
  const std::size_t pos = GetParam();
  if (pos >= wire.size()) GTEST_SKIP();
  wire[pos] = static_cast<std::byte>(static_cast<unsigned>(wire[pos]) ^ 0xff);
  (void)decode(wire);  // must not crash; result may be anything valid-typed
}

INSTANTIATE_TEST_SUITE_P(AllBytePositions, BitFlipFuzz,
                         ::testing::Range<std::size_t>(0, 90, 1));

// --- encode_shared: the fan-out path must be indistinguishable on the wire.

TEST(EncodeShared, UpdateBytesIdenticalToPlainEncode) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.nlri = {net::Prefix{net::Ipv4Addr{10, 1, 0, 0}, 16},
            net::Prefix{net::Ipv4Addr{10, 2, 0, 0}, 16}};
  u.withdrawn = {net::Prefix{net::Ipv4Addr{192, 168, 0, 0}, 24}};
  for (const bool four_octet : {true, false}) {
    const CodecOptions opts{.four_octet_as = four_octet};
    const net::Bytes shared = encode_shared(Message{u}, opts);
    EXPECT_EQ(shared.vec(), encode(u, opts)) << "four_octet=" << four_octet;
  }
}

TEST(EncodeShared, KeepaliveBytesIdenticalAndStaticallyShared) {
  const net::Bytes a = encode_shared(Message{KeepaliveMessage{}});
  const net::Bytes b = encode_shared(Message{KeepaliveMessage{}});
  EXPECT_EQ(a.vec(), encode(Message{KeepaliveMessage{}}));
  EXPECT_EQ(a.data(), b.data());  // one static wire image per thread
}

TEST(EncodeShared, RepeatedUpdateSharesOneBuffer) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.nlri = {net::Prefix{net::Ipv4Addr{10, 9, 0, 0}, 16}};
  const net::Bytes first = encode_shared(Message{u});
  const net::Bytes second = encode_shared(Message{u});
  EXPECT_EQ(first.data(), second.data());  // cache hit: encoded once
  EXPECT_EQ(first.vec(), encode(u));
}

TEST(EncodeShared, CodecWidthIsPartOfTheCacheKey) {
  UpdateMessage u;
  u.attributes = sample_attrs();
  u.nlri = {net::Prefix{net::Ipv4Addr{10, 8, 0, 0}, 16}};
  const net::Bytes wide = encode_shared(Message{u}, {.four_octet_as = true});
  const net::Bytes narrow = encode_shared(Message{u}, {.four_octet_as = false});
  EXPECT_NE(wide.data(), narrow.data());
  EXPECT_EQ(wide.vec(), encode(u, {.four_octet_as = true}));
  EXPECT_EQ(narrow.vec(), encode(u, {.four_octet_as = false}));
}

TEST(EncodeShared, OpenFallsThroughToPlainEncoding) {
  OpenMessage open;
  open.my_as = core::AsNumber{65010};
  open.bgp_id = *net::Ipv4Addr::parse("10.0.0.1");
  const net::Bytes wire = encode_shared(Message{open});
  EXPECT_EQ(wire.vec(), encode(Message{open}));
  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::holds_alternative<OpenMessage>(*back));
}

}  // namespace
}  // namespace bgpsdn::bgp
