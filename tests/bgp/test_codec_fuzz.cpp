// Randomized codec property test: any well-formed UPDATE the framework can
// construct must round-trip bit-exactly through the RFC 4271 wire format,
// in both AS-width modes, at any size (including ones that require
// splitting) — plus a live-session fuzz where the transport itself flips
// bits in flight.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/message.hpp"
#include "bgp/session.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"

namespace bgpsdn::bgp {
namespace {

UpdateMessage random_update(core::Rng& rng, bool big_asns) {
  UpdateMessage u;
  const auto n_withdrawn = rng.uniform_int(0, 6);
  const auto n_nlri = rng.uniform_int(0, 6);
  const auto random_prefix = [&rng] {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
    const auto bits = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll));
    return net::Prefix{net::Ipv4Addr{bits}, len};
  };
  for (int i = 0; i < n_withdrawn; ++i) u.withdrawn.push_back(random_prefix());
  for (int i = 0; i < n_nlri; ++i) u.nlri.push_back(random_prefix());
  // Deduplicate: the codec round-trip compares vectors verbatim, and
  // duplicate prefixes would be legal but pointless.
  std::sort(u.withdrawn.begin(), u.withdrawn.end());
  u.withdrawn.erase(std::unique(u.withdrawn.begin(), u.withdrawn.end()),
                    u.withdrawn.end());
  std::sort(u.nlri.begin(), u.nlri.end());
  u.nlri.erase(std::unique(u.nlri.begin(), u.nlri.end()), u.nlri.end());

  if (!u.nlri.empty()) {
    u.attributes.origin = static_cast<Origin>(rng.uniform_int(0, 2));
    const auto path_len = rng.uniform_int(0, 12);
    std::vector<core::AsNumber> hops;
    for (int i = 0; i < path_len; ++i) {
      hops.emplace_back(static_cast<std::uint32_t>(
          rng.uniform_int(1, big_asns ? 4'000'000'000ll : 65000)));
    }
    u.attributes.as_path = AsPath{std::move(hops)};
    u.attributes.next_hop =
        net::Ipv4Addr{static_cast<std::uint32_t>(rng.uniform_int(1, 0xffffffffll))};
    if (rng.chance(0.5)) {
      u.attributes.med = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
    }
    if (rng.chance(0.5)) {
      u.attributes.local_pref =
          static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    }
    const auto n_comm = rng.uniform_int(0, 5);
    for (int i = 0; i < n_comm; ++i) {
      u.attributes.communities.push_back(
          static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll)));
    }
  }
  return u;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomUpdatesRoundTripFourOctet) {
  core::Rng rng{GetParam()};
  for (int i = 0; i < 50; ++i) {
    const auto u = random_update(rng, /*big_asns=*/true);
    const auto back = decode(encode(u));
    ASSERT_TRUE(back.has_value()) << "iteration " << i;
    EXPECT_EQ(std::get<UpdateMessage>(*back), u) << "iteration " << i;
  }
}

TEST_P(CodecFuzz, RandomUpdatesRoundTripTwoOctet) {
  core::Rng rng{GetParam() + 1000};
  const CodecOptions legacy{.four_octet_as = false};
  for (int i = 0; i < 50; ++i) {
    const auto u = random_update(rng, /*big_asns=*/false);
    const auto back = decode(encode(u, legacy), legacy);
    ASSERT_TRUE(back.has_value()) << "iteration " << i;
    EXPECT_EQ(std::get<UpdateMessage>(*back), u) << "iteration " << i;
  }
}

TEST_P(CodecFuzz, SplitAlwaysFitsAndPreservesContent) {
  core::Rng rng{GetParam() + 2000};
  UpdateMessage u = random_update(rng, true);
  // Inflate to force splitting.
  for (std::uint32_t i = 0; i < 1500; ++i) {
    u.nlri.push_back(net::Prefix{net::Ipv4Addr{(20u << 24) | (i << 8)}, 24});
  }
  if (u.nlri.empty()) return;
  std::sort(u.nlri.begin(), u.nlri.end());
  u.nlri.erase(std::unique(u.nlri.begin(), u.nlri.end()), u.nlri.end());

  std::size_t total = 0;
  for (const auto& piece : split_update(u)) {
    EXPECT_LE(encode(piece).size(), kMaxMessageSize);
    total += piece.nlri.size() + piece.withdrawn.size();
  }
  EXPECT_EQ(total, u.nlri.size() + u.withdrawn.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Transport that flips 1-3 random bits of a message with probability p —
/// the live-session counterpart of the link-corruption fault.
class CorruptingHost : public SessionHost {
 public:
  CorruptingHost(core::EventLoop& loop, core::Logger& log, core::Rng& rng,
                 std::string name)
      : loop_{loop}, log_{log}, rng_{rng}, name_{std::move(name)} {}

  void connect_to(CorruptingHost& peer) { peer_ = &peer; }
  void set_corruption(double p) { corrupt_ = p; }

  void session_transmit(Session&, net::Bytes wire) override {
    if (corrupt_ > 0.0 && !wire.empty() && rng_.chance(corrupt_)) {
      const auto flips = rng_.uniform_int(1, 3);
      const auto bits = static_cast<std::int64_t>(wire.size()) * 8;
      auto& bytes = wire.mutate();
      for (std::int64_t i = 0; i < flips; ++i) {
        const auto bit =
            static_cast<std::size_t>(rng_.uniform_int(0, bits - 1));
        bytes[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
      }
      ++corrupted;
    }
    CorruptingHost* peer = peer_;
    loop_.schedule(core::Duration::millis(1), [peer, wire = std::move(wire)] {
      if (peer->session) peer->session->receive(wire);
    });
  }
  void session_established(Session&) override {}
  void session_down(Session&, const std::string&) override {}
  void session_update(Session&, const UpdateMessage&) override {}
  core::EventLoop& session_loop() override { return loop_; }
  core::Rng& session_rng() override { return rng_; }
  core::Logger& session_logger() override { return log_; }
  std::string session_log_name() const override { return name_; }

  std::unique_ptr<Session> session;
  int corrupted{0};

 private:
  core::EventLoop& loop_;
  core::Logger& log_;
  core::Rng& rng_;
  std::string name_;
  CorruptingHost* peer_{nullptr};
  double corrupt_{0.0};
};

class LiveSessionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiveSessionFuzz, BitFlipsNotifyAndAutoRestartWithoutCrashing) {
  // A session pair exchanges real traffic over a transport that corrupts
  // 20% of messages. The contract under corruption: decode failures answer
  // with a NOTIFICATION and auto-restart — never UB, never a wedged FSM —
  // and once the channel heals the pair re-establishes.
  core::EventLoop loop;
  core::Logger log;
  core::Rng rng{GetParam()};
  CorruptingHost a{loop, log, rng, "a"}, b{loop, log, rng, "b"};
  a.connect_to(b);
  b.connect_to(a);
  const auto config = [](std::uint32_t id, std::uint32_t local_as,
                         std::uint32_t peer_as) {
    SessionConfig c;
    c.id = core::SessionId{id};
    c.local_as = core::AsNumber{local_as};
    c.local_id = net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(id)};
    c.local_address = net::Ipv4Addr{172, 16, 0, static_cast<std::uint8_t>(id)};
    c.remote_address =
        net::Ipv4Addr{172, 16, 0, static_cast<std::uint8_t>(3 - id)};
    c.expected_peer_as = core::AsNumber{peer_as};
    c.timers.hold = core::Duration::seconds(9);
    c.timers.keepalive = core::Duration::seconds(3);
    return c;
  };
  a.session = std::make_unique<Session>(a, config(1, 65001, 65002));
  b.session = std::make_unique<Session>(b, config(2, 65002, 65001));
  a.session->start();
  b.session->start();
  loop.run(loop.now() + core::Duration::seconds(2));
  ASSERT_TRUE(a.session->established());

  a.set_corruption(0.2);
  b.set_corruption(0.2);
  for (int i = 0; i < 60; ++i) {
    // Keep UPDATE traffic flowing between keepalives so payload messages
    // are fuzzed too, not just the 19-byte headers.
    if (a.session->established()) {
      UpdateMessage u = random_update(rng, true);
      u.withdrawn.clear();
      if (!u.nlri.empty()) a.session->send_update(u);
    }
    loop.run(loop.now() + core::Duration::seconds(1));
  }
  ASSERT_GT(a.corrupted + b.corrupted, 0);
  const auto errors = a.session->counters().decode_errors +
                      b.session->counters().decode_errors;
  EXPECT_GT(errors, 0u);
  // Every decode error answers with a NOTIFICATION. Assert on the transmit
  // side: the NOTIFICATION itself crosses the corrupting transport, so the
  // peer is not guaranteed to decode (and count) it.
  EXPECT_GT(a.session->counters().notifications_tx +
                b.session->counters().notifications_tx,
            0u);

  // Channel heals: auto-restart must bring the pair back up.
  a.set_corruption(0.0);
  b.set_corruption(0.0);
  loop.run(loop.now() + core::Duration::seconds(30));
  EXPECT_TRUE(a.session->established());
  EXPECT_TRUE(b.session->established());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveSessionFuzz,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace bgpsdn::bgp
