// Randomized codec property test: any well-formed UPDATE the framework can
// construct must round-trip bit-exactly through the RFC 4271 wire format,
// in both AS-width modes, at any size (including ones that require
// splitting).
#include <gtest/gtest.h>

#include "bgp/message.hpp"
#include "core/random.hpp"

namespace bgpsdn::bgp {
namespace {

UpdateMessage random_update(core::Rng& rng, bool big_asns) {
  UpdateMessage u;
  const auto n_withdrawn = rng.uniform_int(0, 6);
  const auto n_nlri = rng.uniform_int(0, 6);
  const auto random_prefix = [&rng] {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
    const auto bits = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll));
    return net::Prefix{net::Ipv4Addr{bits}, len};
  };
  for (int i = 0; i < n_withdrawn; ++i) u.withdrawn.push_back(random_prefix());
  for (int i = 0; i < n_nlri; ++i) u.nlri.push_back(random_prefix());
  // Deduplicate: the codec round-trip compares vectors verbatim, and
  // duplicate prefixes would be legal but pointless.
  std::sort(u.withdrawn.begin(), u.withdrawn.end());
  u.withdrawn.erase(std::unique(u.withdrawn.begin(), u.withdrawn.end()),
                    u.withdrawn.end());
  std::sort(u.nlri.begin(), u.nlri.end());
  u.nlri.erase(std::unique(u.nlri.begin(), u.nlri.end()), u.nlri.end());

  if (!u.nlri.empty()) {
    u.attributes.origin = static_cast<Origin>(rng.uniform_int(0, 2));
    const auto path_len = rng.uniform_int(0, 12);
    std::vector<core::AsNumber> hops;
    for (int i = 0; i < path_len; ++i) {
      hops.emplace_back(static_cast<std::uint32_t>(
          rng.uniform_int(1, big_asns ? 4'000'000'000ll : 65000)));
    }
    u.attributes.as_path = AsPath{std::move(hops)};
    u.attributes.next_hop =
        net::Ipv4Addr{static_cast<std::uint32_t>(rng.uniform_int(1, 0xffffffffll))};
    if (rng.chance(0.5)) {
      u.attributes.med = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
    }
    if (rng.chance(0.5)) {
      u.attributes.local_pref =
          static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    }
    const auto n_comm = rng.uniform_int(0, 5);
    for (int i = 0; i < n_comm; ++i) {
      u.attributes.communities.push_back(
          static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffll)));
    }
  }
  return u;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomUpdatesRoundTripFourOctet) {
  core::Rng rng{GetParam()};
  for (int i = 0; i < 50; ++i) {
    const auto u = random_update(rng, /*big_asns=*/true);
    const auto back = decode(encode(u));
    ASSERT_TRUE(back.has_value()) << "iteration " << i;
    EXPECT_EQ(std::get<UpdateMessage>(*back), u) << "iteration " << i;
  }
}

TEST_P(CodecFuzz, RandomUpdatesRoundTripTwoOctet) {
  core::Rng rng{GetParam() + 1000};
  const CodecOptions legacy{.four_octet_as = false};
  for (int i = 0; i < 50; ++i) {
    const auto u = random_update(rng, /*big_asns=*/false);
    const auto back = decode(encode(u, legacy), legacy);
    ASSERT_TRUE(back.has_value()) << "iteration " << i;
    EXPECT_EQ(std::get<UpdateMessage>(*back), u) << "iteration " << i;
  }
}

TEST_P(CodecFuzz, SplitAlwaysFitsAndPreservesContent) {
  core::Rng rng{GetParam() + 2000};
  UpdateMessage u = random_update(rng, true);
  // Inflate to force splitting.
  for (std::uint32_t i = 0; i < 1500; ++i) {
    u.nlri.push_back(net::Prefix{net::Ipv4Addr{(20u << 24) | (i << 8)}, 24});
  }
  if (u.nlri.empty()) return;
  std::sort(u.nlri.begin(), u.nlri.end());
  u.nlri.erase(std::unique(u.nlri.begin(), u.nlri.end()), u.nlri.end());

  std::size_t total = 0;
  for (const auto& piece : split_update(u)) {
    EXPECT_LE(encode(piece).size(), kMaxMessageSize);
    total += piece.nlri.size() + piece.withdrawn.size();
  }
  EXPECT_EQ(total, u.nlri.size() + u.withdrawn.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bgpsdn::bgp
