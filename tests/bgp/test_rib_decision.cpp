// Unit tests of the RIB structures and the decision process ladder.
#include <gtest/gtest.h>

#include "bgp/decision.hpp"
#include "bgp/rib.hpp"

namespace bgpsdn::bgp {
namespace {

Route make_route(const char* prefix, std::uint32_t session,
                 std::vector<std::uint32_t> path, std::uint32_t local_pref = 100) {
  Route r;
  r.prefix = *net::Prefix::parse(prefix);
  std::vector<core::AsNumber> hops;
  for (const auto as : path) hops.emplace_back(as);
  PathAttributes attrs;
  attrs.as_path = AsPath{std::move(hops)};
  attrs.local_pref = local_pref;
  attrs.next_hop = net::Ipv4Addr{172, 16, 0, 1};
  r.attributes = AttrSetRef::intern(std::move(attrs));
  r.learned_from = core::SessionId{session};
  r.peer_bgp_id = net::Ipv4Addr{10, 0, 0, session % 256 == 0 ? 1 : session};
  r.peer_address = net::Ipv4Addr{172, 16, session, 1};
  return r;
}

/// Copy-out / edit / re-intern: the canonical bundle is immutable.
template <typename Fn>
void edit_attrs(Route& r, Fn&& fn) {
  PathAttributes attrs = *r.attributes;
  fn(attrs);
  r.attributes = AttrSetRef::intern(std::move(attrs));
}

TEST(AdjRibIn, PutReplacesPerSession) {
  AdjRibIn rib;
  rib.put(make_route("10.0.0.0/16", 1, {3, 1}));
  rib.put(make_route("10.0.0.0/16", 1, {4, 1}));  // implicit withdraw
  EXPECT_EQ(rib.route_count(), 1u);
  const auto cands = rib.candidates(*net::Prefix::parse("10.0.0.0/16"));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0]->attributes->as_path.to_string(), "4 1");
}

TEST(AdjRibIn, MultipleSessionsCoexist) {
  AdjRibIn rib;
  rib.put(make_route("10.0.0.0/16", 1, {1}));
  rib.put(make_route("10.0.0.0/16", 2, {2, 1}));
  rib.put(make_route("10.1.0.0/16", 1, {1}));
  EXPECT_EQ(rib.route_count(), 3u);
  EXPECT_EQ(rib.candidates(*net::Prefix::parse("10.0.0.0/16")).size(), 2u);
  EXPECT_EQ(rib.prefixes().size(), 2u);
}

TEST(AdjRibIn, EraseSpecific) {
  AdjRibIn rib;
  rib.put(make_route("10.0.0.0/16", 1, {1}));
  rib.put(make_route("10.0.0.0/16", 2, {2, 1}));
  EXPECT_TRUE(rib.erase(*net::Prefix::parse("10.0.0.0/16"), core::SessionId{1}));
  EXPECT_FALSE(rib.erase(*net::Prefix::parse("10.0.0.0/16"), core::SessionId{1}));
  EXPECT_EQ(rib.route_count(), 1u);
}

TEST(AdjRibIn, EraseSessionReturnsAffectedPrefixes) {
  AdjRibIn rib;
  rib.put(make_route("10.0.0.0/16", 1, {1}));
  rib.put(make_route("10.1.0.0/16", 1, {1}));
  rib.put(make_route("10.2.0.0/16", 2, {2}));
  const auto affected = rib.erase_session(core::SessionId{1});
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_EQ(rib.route_count(), 1u);
}

TEST(AdjRibIn, FindExact) {
  AdjRibIn rib;
  rib.put(make_route("10.0.0.0/16", 1, {1}));
  EXPECT_NE(rib.find(*net::Prefix::parse("10.0.0.0/16"), core::SessionId{1}),
            nullptr);
  EXPECT_EQ(rib.find(*net::Prefix::parse("10.0.0.0/16"), core::SessionId{9}),
            nullptr);
  EXPECT_EQ(rib.find(*net::Prefix::parse("10.9.0.0/16"), core::SessionId{1}),
            nullptr);
}

TEST(LocRib, GenerationBumpsOnChange) {
  LocRib rib;
  const auto g0 = rib.generation();
  EXPECT_TRUE(rib.install(make_route("10.0.0.0/16", 1, {1})));
  EXPECT_GT(rib.generation(), g0);
  // Identical reinstall is a no-op.
  EXPECT_FALSE(rib.install(make_route("10.0.0.0/16", 1, {1})));
  // Different path is a change.
  EXPECT_TRUE(rib.install(make_route("10.0.0.0/16", 2, {2, 1})));
  EXPECT_TRUE(rib.remove(*net::Prefix::parse("10.0.0.0/16")));
  EXPECT_FALSE(rib.remove(*net::Prefix::parse("10.0.0.0/16")));
}

TEST(AdjRibOut, SuppressesDuplicateAdvertisements) {
  AdjRibOut out;
  PathAttributes attrs;
  attrs.as_path = AsPath{{core::AsNumber{1}}};
  const auto p = *net::Prefix::parse("10.0.0.0/16");
  EXPECT_TRUE(out.advertise(p, AttrSetRef::intern(attrs)));
  EXPECT_FALSE(out.advertise(p, AttrSetRef::intern(attrs)));  // suppressed
  attrs.as_path = AsPath{{core::AsNumber{2}, core::AsNumber{1}}};
  EXPECT_TRUE(out.advertise(p, AttrSetRef::intern(attrs)));  // changed attrs
  EXPECT_TRUE(out.withdraw(p));
  EXPECT_FALSE(out.withdraw(p));  // nothing left to withdraw
}

// --- decision process ladder -------------------------------------------

TEST(Decision, LocalPrefDominates) {
  auto a = make_route("10.0.0.0/16", 1, {1, 2, 3, 4}, 200);  // longer path
  auto b = make_route("10.0.0.0/16", 2, {1}, 100);
  EXPECT_LT(compare_routes(a, b), 0);
  EXPECT_EQ(decide_reason(a, b), DecisionReason::kLocalPref);
}

TEST(Decision, ShorterAsPathWins) {
  auto a = make_route("10.0.0.0/16", 1, {1});
  auto b = make_route("10.0.0.0/16", 2, {2, 1});
  EXPECT_LT(compare_routes(a, b), 0);
  EXPECT_GT(compare_routes(b, a), 0);
  EXPECT_EQ(decide_reason(a, b), DecisionReason::kAsPathLength);
}

TEST(Decision, OriginBreaksPathTie) {
  auto a = make_route("10.0.0.0/16", 1, {1});
  auto b = make_route("10.0.0.0/16", 2, {2});
  edit_attrs(a, [](PathAttributes& at) { at.origin = Origin::kIgp; });
  edit_attrs(b, [](PathAttributes& at) { at.origin = Origin::kEgp; });
  EXPECT_LT(compare_routes(a, b), 0);
  EXPECT_EQ(decide_reason(a, b), DecisionReason::kOrigin);
}

TEST(Decision, LowerMedWins) {
  auto a = make_route("10.0.0.0/16", 1, {1});
  auto b = make_route("10.0.0.0/16", 2, {2});
  edit_attrs(a, [](PathAttributes& at) { at.med = 10; });
  edit_attrs(b, [](PathAttributes& at) { at.med = 20; });
  EXPECT_LT(compare_routes(a, b), 0);
  EXPECT_EQ(decide_reason(a, b), DecisionReason::kMed);
}

TEST(Decision, MissingMedTreatedAsZero) {
  auto a = make_route("10.0.0.0/16", 1, {1});
  auto b = make_route("10.0.0.0/16", 2, {2});
  edit_attrs(b, [](PathAttributes& at) { at.med = 5; });
  EXPECT_LT(compare_routes(a, b), 0);  // absent (0) beats 5
}

TEST(Decision, OlderRouteWins) {
  auto a = make_route("10.0.0.0/16", 1, {1});
  auto b = make_route("10.0.0.0/16", 2, {2});
  a.installed_at = core::TimePoint::from_nanos(100);
  b.installed_at = core::TimePoint::from_nanos(200);
  EXPECT_LT(compare_routes(a, b), 0);
  EXPECT_EQ(decide_reason(a, b), DecisionReason::kAge);
}

TEST(Decision, BgpIdBreaksFinalTies) {
  auto a = make_route("10.0.0.0/16", 1, {1});
  auto b = make_route("10.0.0.0/16", 2, {2});
  a.installed_at = b.installed_at = core::TimePoint::from_nanos(5);
  a.peer_bgp_id = net::Ipv4Addr{10, 0, 0, 1};
  b.peer_bgp_id = net::Ipv4Addr{10, 0, 0, 2};
  EXPECT_LT(compare_routes(a, b), 0);
  EXPECT_EQ(decide_reason(a, b), DecisionReason::kBgpId);
}

TEST(Decision, PeerAddressIsLastResort) {
  auto a = make_route("10.0.0.0/16", 1, {1});
  auto b = make_route("10.0.0.0/16", 2, {2});
  a.installed_at = b.installed_at = core::TimePoint::from_nanos(5);
  a.peer_bgp_id = b.peer_bgp_id = net::Ipv4Addr{10, 0, 0, 1};
  a.peer_address = net::Ipv4Addr{172, 16, 0, 1};
  b.peer_address = net::Ipv4Addr{172, 16, 0, 5};
  EXPECT_LT(compare_routes(a, b), 0);
  EXPECT_EQ(decide_reason(a, b), DecisionReason::kPeerAddress);
}

TEST(Decision, SelectBestScansAll) {
  auto a = make_route("10.0.0.0/16", 1, {1, 2, 3});
  auto b = make_route("10.0.0.0/16", 2, {1, 2});
  auto c = make_route("10.0.0.0/16", 3, {1});
  const std::vector<const Route*> cands{&a, &b, &c};
  EXPECT_EQ(select_best(cands), &c);
  EXPECT_EQ(select_best({}), nullptr);
}

TEST(Decision, ReasonStringsAreStable) {
  EXPECT_STREQ(to_string(DecisionReason::kLocalPref), "local-pref");
  EXPECT_STREQ(to_string(DecisionReason::kAsPathLength), "as-path-length");
  EXPECT_STREQ(to_string(DecisionReason::kTie), "tie");
}

}  // namespace
}  // namespace bgpsdn::bgp
