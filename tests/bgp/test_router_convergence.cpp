// Integration tests of BGP dynamics: session establishment, propagation,
// best-path selection, withdrawal path hunting, link failure fail-over.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace bgpsdn {
namespace {

using testing::MiniTopo;

TEST(RouterConvergence, TwoRoutersEstablishAndExchange) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  topo.peer(a, b);
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(5));

  ASSERT_EQ(a.sessions().size(), 1u);
  EXPECT_TRUE(a.sessions()[0]->established());
  EXPECT_TRUE(b.sessions()[0]->established());

  const bgp::Route* route = b.loc_rib().find(pfx);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->attributes->as_path.to_string(), "1");
  EXPECT_EQ(route->attributes->next_hop.is_unspecified(), false);

  // A's own route is local.
  const bgp::Route* own = a.loc_rib().find(pfx);
  ASSERT_NE(own, nullptr);
  EXPECT_TRUE(own->is_local());
}

TEST(RouterConvergence, LinePropagatesWithAsPathGrowth) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  auto& c = topo.add_router(3);
  topo.peer(a, b);
  topo.peer(b, c);
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(5));

  const bgp::Route* at_c = c.loc_rib().find(pfx);
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->attributes->as_path.to_string(), "2 1");
}

TEST(RouterConvergence, ShortestPathWinsInTriangle) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  auto& c = topo.add_router(3);
  topo.peer(a, b);
  topo.peer(b, c);
  topo.peer(a, c);
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(5));

  // C hears [1] direct and [2 1] via B; direct must win.
  const bgp::Route* at_c = c.loc_rib().find(pfx);
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->attributes->as_path.to_string(), "1");
  // And the alternative is retained in Adj-RIB-In.
  EXPECT_EQ(c.adj_rib_in().candidates(pfx).size(), 2u);
}

TEST(RouterConvergence, WithdrawalRemovesEverywhere) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  auto& c = topo.add_router(3);
  topo.peer(a, b);
  topo.peer(b, c);
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(5));
  ASSERT_NE(c.loc_rib().find(pfx), nullptr);

  a.withdraw_origin(pfx);
  topo.run_for(core::Duration::seconds(30));
  EXPECT_EQ(a.loc_rib().find(pfx), nullptr);
  EXPECT_EQ(b.loc_rib().find(pfx), nullptr);
  EXPECT_EQ(c.loc_rib().find(pfx), nullptr);
  EXPECT_EQ(c.adj_rib_in().candidates(pfx).size(), 0u);
}

TEST(RouterConvergence, CliqueWithdrawalConvergesAndHunts) {
  MiniTopo topo;
  constexpr int kN = 6;
  for (int i = 0; i < kN; ++i) topo.add_router(static_cast<std::uint32_t>(i + 1));
  auto& routers = topo.routers();
  for (int i = 0; i < kN; ++i) {
    for (int j = i + 1; j < kN; ++j) topo.peer(*routers[i], *routers[j]);
  }
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  routers[0]->originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(10));
  for (int i = 1; i < kN; ++i) {
    ASSERT_NE(routers[i]->loc_rib().find(pfx), nullptr) << "router " << i;
    EXPECT_EQ(routers[i]->loc_rib().find(pfx)->attributes->as_path.to_string(), "1");
  }

  const auto updates_before = routers[2]->counters().updates_rx;
  routers[0]->withdraw_origin(pfx);
  topo.run_for(core::Duration::seconds(60));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(routers[i]->loc_rib().find(pfx), nullptr) << "router " << i;
  }
  // Path hunting: the withdrawal must have triggered extra exploration
  // updates, not just one withdrawal per peer.
  EXPECT_GT(routers[2]->counters().updates_rx, updates_before + 4);
}

TEST(RouterConvergence, LinkFailureTriggersFailover) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  auto& c = topo.add_router(3);
  topo.peer(a, b);   // link 0
  topo.peer(b, c);   // link 1
  topo.peer(a, c);   // link 2
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(5));
  ASSERT_EQ(c.loc_rib().find(pfx)->attributes->as_path.to_string(), "1");

  // Kill the direct A-C link; C must fail over to the path via B.
  topo.net().set_link_up(core::LinkId{2}, false);
  topo.run_for(core::Duration::seconds(30));
  const bgp::Route* at_c = c.loc_rib().find(pfx);
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->attributes->as_path.to_string(), "2 1");

  // Restore; C should return to the direct path.
  topo.net().set_link_up(core::LinkId{2}, true);
  topo.run_for(core::Duration::seconds(30));
  at_c = c.loc_rib().find(pfx);
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->attributes->as_path.to_string(), "1");
}

TEST(RouterConvergence, GaoRexfordValleyFree) {
  MiniTopo topo;
  // p1 and p2 are providers of cust; p1 and p2 are peers of each other.
  auto& p1 = topo.add_router(1);
  auto& p2 = topo.add_router(2);
  auto& cust = topo.add_router(3);
  topo.peer(p1, p2, {core::Duration::millis(2), 0, 0.0},
            bgp::PolicyMode::kGaoRexford, bgp::Relationship::kPeer);
  // From p1's view, cust is a customer.
  topo.peer(p1, cust, {core::Duration::millis(2), 0, 0.0},
            bgp::PolicyMode::kGaoRexford, bgp::Relationship::kCustomer);
  topo.peer(p2, cust, {core::Duration::millis(2), 0, 0.0},
            bgp::PolicyMode::kGaoRexford, bgp::Relationship::kCustomer);

  const auto pfx1 = *net::Prefix::parse("10.0.0.0/16");
  p1.originate(pfx1);
  topo.start();
  topo.run_for(core::Duration::seconds(10));

  // cust hears p1's prefix from its provider p1 (and possibly via p2).
  ASSERT_NE(cust.loc_rib().find(pfx1), nullptr);
  // p2 hears it over the peer link. But p2 must NOT export a peer-learned
  // route to its peer... (no third peer here) — key check: cust's route via
  // p2 exists because providers export everything to customers.
  // Now the valley check: originate at cust; p1 must not export the
  // customer route... wait, customer routes go everywhere. The real valley:
  // a route p2 learned from peer p1 must not be re-exported to peer p1 or
  // other peers, but may go to customer cust.
  const auto cands = cust.adj_rib_in().candidates(pfx1);
  EXPECT_EQ(cands.size(), 2u);  // direct from p1, and via p2 (peer->customer OK)

  // Customer routes are preferred over peer routes at p2: p2's best for
  // pfx1 is via peer p1 (only option), but if cust announced it too, the
  // customer route would win.
  const auto pfx3 = *net::Prefix::parse("10.2.0.0/16");
  cust.originate(pfx3);
  topo.run_for(core::Duration::seconds(10));
  const bgp::Route* at_p1 = p1.loc_rib().find(pfx3);
  ASSERT_NE(at_p1, nullptr);
  // p1 hears pfx3 from cust (customer, LP 130) and from p2 (peer, LP 100)?
  // p2 must not export a customer route to a peer? Customer routes ARE
  // exported to peers (that is how the Internet works). So p1 sees both and
  // prefers the customer path.
  EXPECT_EQ(at_p1->attributes->as_path.to_string(), "3");
  EXPECT_EQ(at_p1->attributes->local_pref.value_or(0), 130u);
}

}  // namespace
}  // namespace bgpsdn
