// BgpRouter internals: MRAI pacing (both styles), per-peer MRAI overrides,
// processing-delay serialization, policy/loop rejection accounting, FIB and
// host forwarding, update grouping, and the route collector.
#include <gtest/gtest.h>

#include "bgp/collector.hpp"
#include "net/host.hpp"
#include "test_helpers.hpp"

namespace bgpsdn {
namespace {

using testing::MiniTopo;

TEST(RouterUnits, PeriodicMraiDelaysPostEstablishmentChanges) {
  MiniTopo topo;
  bgp::Timers timers = MiniTopo::quick_timers();
  timers.mrai = core::Duration::seconds(10);
  timers.mrai_style = bgp::MraiStyle::kPeriodicQuagga;
  auto& a = topo.add_router(1, timers);
  auto& b = topo.add_router(2, timers);
  topo.peer(a, b);
  topo.start();
  topo.run_for(core::Duration::seconds(2));
  ASSERT_TRUE(a.sessions()[0]->established());

  // A change after establishment waits for the next advertisement tick.
  const auto t0 = topo.loop().now();
  a.originate(*net::Prefix::parse("10.50.0.0/16"));
  topo.run_for(core::Duration::seconds(4));  // less than 0.75 * mrai - 2s
  EXPECT_EQ(b.loc_rib().find(*net::Prefix::parse("10.50.0.0/16")), nullptr);
  topo.run_for(core::Duration::seconds(10));
  const bgp::Route* r = b.loc_rib().find(*net::Prefix::parse("10.50.0.0/16"));
  ASSERT_NE(r, nullptr);
  EXPECT_GE(r->installed_at - t0, core::Duration::seconds_f(5.0));
}

TEST(RouterUnits, ImmediateThenGateSendsFirstChangeAtOnce) {
  MiniTopo topo;
  bgp::Timers timers = MiniTopo::quick_timers();
  timers.mrai = core::Duration::seconds(10);
  timers.mrai_style = bgp::MraiStyle::kImmediateThenGate;
  auto& a = topo.add_router(1, timers);
  auto& b = topo.add_router(2, timers);
  topo.peer(a, b);
  topo.start();
  topo.run_for(core::Duration::seconds(2));

  a.originate(*net::Prefix::parse("10.50.0.0/16"));
  topo.run_for(core::Duration::seconds(1));
  EXPECT_NE(b.loc_rib().find(*net::Prefix::parse("10.50.0.0/16")), nullptr);

  // But the second change within the interval is gated.
  a.originate(*net::Prefix::parse("10.51.0.0/16"));
  topo.run_for(core::Duration::seconds(1));
  EXPECT_EQ(b.loc_rib().find(*net::Prefix::parse("10.51.0.0/16")), nullptr);
  topo.run_for(core::Duration::seconds(12));
  EXPECT_NE(b.loc_rib().find(*net::Prefix::parse("10.51.0.0/16")), nullptr);
}

TEST(RouterUnits, WithdrawalsBypassMrai) {
  MiniTopo topo;
  bgp::Timers timers = MiniTopo::quick_timers();
  timers.mrai = core::Duration::seconds(30);
  auto& a = topo.add_router(1, timers);
  auto& b = topo.add_router(2, timers);
  topo.peer(a, b);
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);  // pre-start: goes with the initial table
  topo.start();
  topo.run_for(core::Duration::seconds(2));
  ASSERT_NE(b.loc_rib().find(pfx), nullptr);

  a.withdraw_origin(pfx);
  topo.run_for(core::Duration::seconds(1));
  EXPECT_EQ(b.loc_rib().find(pfx), nullptr);  // no 30 s wait
}

TEST(RouterUnits, PerPeerMraiZeroOverride) {
  // Like a route-collector peering: changes flow immediately on this peer
  // even though the router default is long.
  MiniTopo topo;
  bgp::Timers timers = MiniTopo::quick_timers();
  timers.mrai = core::Duration::seconds(30);
  auto& a = topo.add_router(1, timers);
  auto& b = topo.add_router(2, timers);
  // Hand-wire to control PeerConfig.
  const auto link = topo.net().connect(a.id(), b.id());
  const auto& l = topo.net().link(link);
  const auto p2p = topo.alloc().next_p2p();
  bgp::PeerConfig pa;
  pa.local_address = p2p.left;
  pa.remote_address = p2p.right;
  pa.expected_peer_as = b.asn();
  pa.mrai = core::Duration::zero();
  a.add_peer(l.a.port, pa);
  bgp::PeerConfig pb;
  pb.local_address = p2p.right;
  pb.remote_address = p2p.left;
  pb.expected_peer_as = a.asn();
  b.add_peer(l.b.port, pb);

  topo.start();
  topo.run_for(core::Duration::seconds(2));
  a.originate(*net::Prefix::parse("10.50.0.0/16"));
  topo.run_for(core::Duration::seconds(1));
  EXPECT_NE(b.loc_rib().find(*net::Prefix::parse("10.50.0.0/16")), nullptr);
}

TEST(RouterUnits, ProcessingDelaySerializesUpdates) {
  MiniTopo topo;
  bgp::Timers timers = MiniTopo::quick_timers();
  auto& a = topo.add_router(1, timers);
  // Big per-update processing cost on b.
  bgp::RouterConfig rc;
  rc.asn = core::AsNumber{2};
  rc.router_id = topo.alloc().router_id(rc.asn);
  rc.timers = timers;
  rc.processing.per_update = core::Duration::millis(100);
  auto& b = topo.net().add<bgp::BgpRouter>("AS2", rc);
  topo.routers().push_back(&b);
  topo.peer(a, b);
  topo.start();
  topo.run_for(core::Duration::seconds(2));

  // Two separate prefixes originated together arrive as updates whose
  // processing is serialized by the CPU model.
  const auto t0 = topo.loop().now();
  a.originate(*net::Prefix::parse("10.50.0.0/16"));
  a.originate(*net::Prefix::parse("10.51.0.0/16"));
  topo.run_for(core::Duration::seconds(3));
  // Copy out: compact-layout find() returns a scratch slot that the next
  // find() reuses.
  const auto* r1 = b.loc_rib().find(*net::Prefix::parse("10.50.0.0/16"));
  ASSERT_NE(r1, nullptr);
  const bgp::Route first = *r1;
  const auto* r2 = b.loc_rib().find(*net::Prefix::parse("10.51.0.0/16"));
  ASSERT_NE(r2, nullptr);
  // Both took at least one 100 ms processing slot after t0.
  EXPECT_GE(std::max(first.installed_at, r2->installed_at) - t0,
            core::Duration::millis(100));
}

TEST(RouterUnits, ImportDenyCountsPolicyRejections) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  const auto link = topo.net().connect(a.id(), b.id());
  const auto& l = topo.net().link(link);
  const auto p2p = topo.alloc().next_p2p();
  bgp::PeerConfig pa;
  pa.local_address = p2p.left;
  pa.remote_address = p2p.right;
  pa.expected_peer_as = b.asn();
  a.add_peer(l.a.port, pa);
  bgp::PeerConfig pb;
  pb.local_address = p2p.right;
  pb.remote_address = p2p.left;
  pb.expected_peer_as = a.asn();
  pb.policy.import_deny = {*net::Prefix::parse("10.0.0.0/12")};
  b.add_peer(l.b.port, pb);

  a.originate(*net::Prefix::parse("10.1.0.0/16"));   // inside the deny
  a.originate(*net::Prefix::parse("10.99.0.0/16"));  // outside 10.0.0.0/12
  topo.start();
  topo.run_for(core::Duration::seconds(2));
  EXPECT_EQ(b.loc_rib().find(*net::Prefix::parse("10.1.0.0/16")), nullptr);
  EXPECT_NE(b.loc_rib().find(*net::Prefix::parse("10.99.0.0/16")), nullptr);
  EXPECT_GE(b.counters().routes_rejected_policy, 1u);
}

TEST(RouterUnits, LoopRejectionCounted) {
  // Without split horizon (default), B re-advertises A's own route back to
  // A; A must reject it and count the loop.
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  topo.peer(a, b);
  a.originate(*net::Prefix::parse("10.0.0.0/16"));
  topo.start();
  topo.run_for(core::Duration::seconds(5));
  EXPECT_GE(a.counters().routes_rejected_loop, 1u);
  // And the looped path is not in A's Adj-RIB-In.
  EXPECT_EQ(a.adj_rib_in().candidates(*net::Prefix::parse("10.0.0.0/16")).size(),
            0u);
}

TEST(RouterUnits, SplitHorizonSuppressesEcho) {
  MiniTopo topo;
  bgp::RouterConfig rc;
  rc.asn = core::AsNumber{1};
  rc.router_id = topo.alloc().router_id(rc.asn);
  rc.timers = MiniTopo::quick_timers();
  rc.split_horizon = true;
  auto& a = topo.net().add<bgp::BgpRouter>("AS1", rc);
  topo.routers().push_back(&a);
  rc.asn = core::AsNumber{2};
  rc.router_id = topo.alloc().router_id(rc.asn);
  auto& b = topo.net().add<bgp::BgpRouter>("AS2", rc);
  topo.routers().push_back(&b);
  topo.peer(a, b);
  a.originate(*net::Prefix::parse("10.0.0.0/16"));
  topo.start();
  topo.run_for(core::Duration::seconds(5));
  EXPECT_EQ(a.counters().routes_rejected_loop, 0u);
  EXPECT_NE(b.loc_rib().find(*net::Prefix::parse("10.0.0.0/16")), nullptr);
}

TEST(RouterUnits, UpdatesGroupedByAttributes) {
  // Prefixes sharing an attribute bundle travel in one UPDATE.
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  topo.peer(a, b);
  for (int i = 0; i < 8; ++i) {
    a.originate(net::Prefix{
        net::Ipv4Addr{(10u << 24) | (static_cast<std::uint32_t>(40 + i) << 16)},
        16});
  }
  topo.start();
  topo.run_for(core::Duration::seconds(3));
  // All 8 prefixes arrived...
  EXPECT_EQ(b.loc_rib().size(), 8u);
  // ...in very few UPDATE messages (grouping), not 8 separate ones.
  EXPECT_LE(a.counters().updates_tx, 3u);
}

TEST(RouterUnits, HostAttachInstallsFibAndForwards) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  topo.peer(a, b);
  auto& host_a = topo.net().add<net::Host>("hA", net::Ipv4Addr{10, 10, 0, 2});
  auto& host_b = topo.net().add<net::Host>("hB", net::Ipv4Addr{10, 20, 0, 2});
  const auto la = topo.net().connect(host_a.id(), a.id());
  const auto lb = topo.net().connect(host_b.id(), b.id());
  a.attach_host(topo.net().link(la).b.port, *net::Prefix::parse("10.10.0.0/16"));
  b.attach_host(topo.net().link(lb).b.port, *net::Prefix::parse("10.20.0.0/16"));
  topo.start();
  topo.run_for(core::Duration::seconds(3));

  // FIB lookups resolve both locally and remotely.
  EXPECT_TRUE(a.fib_lookup(host_a.address()).has_value());
  EXPECT_TRUE(a.fib_lookup(host_b.address()).has_value());
  EXPECT_FALSE(a.fib_lookup(net::Ipv4Addr{192, 0, 2, 1}).has_value());

  host_a.send_probe(host_b.address(), 5);
  topo.run_for(core::Duration::seconds(1));
  EXPECT_EQ(host_a.replies_received(), 1u);
  EXPECT_GT(a.counters().packets_forwarded, 0u);

  // Unroutable destinations are counted.
  host_a.send_probe(net::Ipv4Addr{192, 0, 2, 99}, 6);
  topo.run_for(core::Duration::seconds(1));
  EXPECT_GT(a.counters().packets_no_route, 0u);
}

TEST(RouterUnits, CollectorRecordsAnnouncementsAndWithdrawals) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& collector = topo.net().add<bgp::RouteCollector>(
      "rc", net::Ipv4Addr{192, 0, 2, 1});
  const auto link = topo.net().connect(a.id(), collector.id());
  const auto& l = topo.net().link(link);
  const auto p2p = topo.alloc().next_p2p();
  bgp::PeerConfig pc;
  pc.local_address = p2p.left;
  pc.remote_address = p2p.right;
  pc.expected_peer_as = core::AsNumber{64512};
  pc.mrai = core::Duration::zero();
  a.add_peer(l.a.port, pc);
  collector.add_peer(l.b.port, p2p.right, p2p.left);

  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(2));
  ASSERT_EQ(collector.established_count(), 1u);
  a.withdraw_origin(pfx);
  topo.run_for(core::Duration::seconds(2));

  const auto& tape = collector.observations();
  ASSERT_EQ(tape.size(), 2u);
  EXPECT_TRUE(tape[0].announce);
  EXPECT_EQ(tape[0].prefix, pfx);
  EXPECT_EQ(tape[0].peer_as.value(), 1u);
  EXPECT_EQ(tape[0].as_path.to_string(), "1");
  EXPECT_FALSE(tape[1].announce);
  EXPECT_LE(tape[0].when, tape[1].when);
  EXPECT_EQ(collector.last_activity(), tape[1].when);
  EXPECT_NE(tape[0].to_string().find("A 10.0.0.0/16"), std::string::npos);
  EXPECT_NE(tape[1].to_string().find("W 10.0.0.0/16"), std::string::npos);
}

TEST(RouterUnits, SessionRestartResendsFullTable) {
  MiniTopo topo;
  auto& a = topo.add_router(1);
  auto& b = topo.add_router(2);
  topo.peer(a, b);
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(2));
  ASSERT_NE(b.loc_rib().find(pfx), nullptr);

  const auto link = topo.net().find_link(a.id(), b.id());
  topo.net().set_link_up(link, false);
  topo.run_for(core::Duration::seconds(1));
  EXPECT_EQ(b.loc_rib().find(pfx), nullptr);  // session down clears routes

  topo.net().set_link_up(link, true);
  topo.run_for(core::Duration::seconds(5));
  EXPECT_NE(b.loc_rib().find(pfx), nullptr);  // full table resent
}

}  // namespace
}  // namespace bgpsdn
