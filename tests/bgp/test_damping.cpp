// Route-flap damping: decay math, suppression thresholds, ceiling, and the
// live-router integration (a flapping origin gets suppressed at its
// neighbor and recovers after the quiet period).
#include <gtest/gtest.h>

#include "bgp/damping.hpp"
#include "test_helpers.hpp"

namespace bgpsdn::bgp {
namespace {

DampingConfig quick_damping() {
  DampingConfig cfg;
  cfg.enabled = true;
  cfg.half_life = core::Duration::seconds(10);
  cfg.max_suppress = core::Duration::seconds(40);
  return cfg;
}

core::TimePoint at(double seconds) {
  return core::TimePoint::origin() + core::Duration::seconds_f(seconds);
}

const net::Prefix kPfx = *net::Prefix::parse("10.0.0.0/16");
const core::SessionId kSid{1};

TEST(FlapDampener, DisabledNeverSuppresses) {
  FlapDampener d{DampingConfig{}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(d.record_flap(kSid, kPfx, true, at(i)).suppressed);
  }
  EXPECT_FALSE(d.is_suppressed(kSid, kPfx, at(21)));
}

TEST(FlapDampener, SingleFlapBelowThreshold) {
  FlapDampener d{quick_damping()};
  const auto v = d.record_flap(kSid, kPfx, true, at(0));
  EXPECT_DOUBLE_EQ(v.penalty, 1000.0);
  EXPECT_FALSE(v.suppressed);
  EXPECT_FALSE(d.is_suppressed(kSid, kPfx, at(1)));
}

TEST(FlapDampener, RepeatedFlapsSuppress) {
  FlapDampener d{quick_damping()};
  d.record_flap(kSid, kPfx, true, at(0));   // 1000
  d.record_flap(kSid, kPfx, false, at(1));  // ~1933
  const auto v = d.record_flap(kSid, kPfx, true, at(2));  // > 2000
  EXPECT_TRUE(v.suppressed);
  EXPECT_TRUE(d.is_suppressed(kSid, kPfx, at(3)));
  EXPECT_EQ(d.total_suppressions(), 1u);
  EXPECT_GT(v.reuse_after, core::Duration::zero());
}

TEST(FlapDampener, PenaltyDecaysWithHalfLife) {
  FlapDampener d{quick_damping()};
  d.record_flap(kSid, kPfx, true, at(0));  // 1000
  EXPECT_NEAR(d.penalty(kSid, kPfx, at(10)), 500.0, 1.0);   // one half-life
  EXPECT_NEAR(d.penalty(kSid, kPfx, at(20)), 250.0, 1.0);   // two
  EXPECT_NEAR(d.penalty(kSid, kPfx, at(0)), 1000.0, 1e-9);  // no time passed
}

TEST(FlapDampener, SuppressionLapsesAtReuseThreshold) {
  FlapDampener d{quick_damping()};
  d.record_flap(kSid, kPfx, true, at(0));
  d.record_flap(kSid, kPfx, true, at(1));
  const auto v = d.record_flap(kSid, kPfx, true, at(2));
  ASSERT_TRUE(v.suppressed);
  // After reuse_after, the route must be usable again.
  const auto reuse_at = at(2) + v.reuse_after + core::Duration::seconds(1);
  EXPECT_FALSE(d.is_suppressed(kSid, kPfx, reuse_at));
  // And a single new flap does not immediately re-suppress (penalty from
  // the reuse level + 1000 < 2000... reuse 750 + 1000 = 1750 < 2000).
  const auto v2 = d.record_flap(kSid, kPfx, true, reuse_at);
  EXPECT_FALSE(v2.suppressed);
}

TEST(FlapDampener, CeilingBoundsSuppressionTime) {
  FlapDampener d{quick_damping()};
  // Hammer the route: penalty must saturate at the ceiling implied by
  // max_suppress (reuse * 2^(40/10) = 750 * 16 = 12000).

  double last = 0;
  for (int i = 0; i < 100; ++i) {
    last = d.record_flap(kSid, kPfx, true, at(0.01 * i)).penalty;
  }
  EXPECT_LE(last, 12000.0 + 1.0);
  // reuse_after bounded by max_suppress.
  const auto v = d.record_flap(kSid, kPfx, true, at(2));
  EXPECT_LE(v.reuse_after, core::Duration::seconds(41));
}

TEST(FlapDampener, SessionsIndependentAndClearable) {
  FlapDampener d{quick_damping()};
  const core::SessionId other{2};
  d.record_flap(kSid, kPfx, true, at(0));
  d.record_flap(kSid, kPfx, true, at(0));
  d.record_flap(kSid, kPfx, true, at(0));
  EXPECT_TRUE(d.is_suppressed(kSid, kPfx, at(1)));
  EXPECT_FALSE(d.is_suppressed(other, kPfx, at(1)));
  EXPECT_TRUE(d.has_history(kSid, kPfx));
  d.clear_session(kSid);
  EXPECT_FALSE(d.has_history(kSid, kPfx));
  EXPECT_FALSE(d.is_suppressed(kSid, kPfx, at(1)));
}

// --- live-router integration ------------------------------------------------

TEST(DampingIntegration, FlappingOriginGetsSuppressedAndRecovers) {
  testing::MiniTopo topo;
  bgp::Timers timers = testing::MiniTopo::quick_timers();
  timers.mrai = core::Duration::millis(50);

  auto& a = topo.add_router(1, timers);
  // Damping enabled on B with a short half-life so the test stays quick.
  RouterConfig rc;
  rc.asn = core::AsNumber{2};
  rc.router_id = topo.alloc().router_id(rc.asn);
  rc.timers = timers;
  rc.damping = quick_damping();
  auto& b = topo.net().add<BgpRouter>("AS2", rc);
  topo.routers().push_back(&b);
  topo.peer(a, b);

  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  a.originate(pfx);
  topo.start();
  topo.run_for(core::Duration::seconds(2));
  ASSERT_NE(b.loc_rib().find(pfx), nullptr);

  // Flap hard: withdraw/announce cycles faster than the half-life.
  for (int i = 0; i < 4; ++i) {
    a.withdraw_origin(pfx);
    topo.run_for(core::Duration::millis(400));
    a.originate(pfx);
    topo.run_for(core::Duration::millis(400));
  }
  // B has suppressed the route: announced by A, but not selected.
  EXPECT_GT(b.counters().routes_suppressed, 0u);
  EXPECT_EQ(b.loc_rib().find(pfx), nullptr);
  EXPECT_EQ(b.adj_rib_in().candidates(pfx).size(), 1u);  // stored, unused

  // After the penalty decays the route returns without any new update.
  topo.run_for(core::Duration::seconds(60));
  EXPECT_NE(b.loc_rib().find(pfx), nullptr);
}

TEST(DampingIntegration, StableRouteNeverDamped) {
  testing::MiniTopo topo;
  RouterConfig rc;
  rc.asn = core::AsNumber{2};
  rc.router_id = topo.alloc().router_id(rc.asn);
  rc.timers = testing::MiniTopo::quick_timers();
  rc.damping = quick_damping();
  auto& b = topo.net().add<BgpRouter>("AS2", rc);
  topo.routers().push_back(&b);
  auto& a = topo.add_router(1);
  topo.peer(a, b);
  a.originate(*net::Prefix::parse("10.0.0.0/16"));
  topo.start();
  topo.run_for(core::Duration::seconds(30));
  EXPECT_EQ(b.counters().routes_suppressed, 0u);
  EXPECT_NE(b.loc_rib().find(*net::Prefix::parse("10.0.0.0/16")), nullptr);
}

}  // namespace
}  // namespace bgpsdn::bgp
