// Tests of the path-attribute interning pool (attr_intern.hpp).
#include <gtest/gtest.h>

#include <vector>

#include "bgp/attr_intern.hpp"

namespace bgpsdn::bgp {
namespace {

PathAttributes make_attrs(std::vector<std::uint32_t> path,
                          std::uint32_t local_pref = 100) {
  PathAttributes attrs;
  std::vector<core::AsNumber> hops;
  for (const auto as : path) hops.emplace_back(as);
  attrs.as_path = AsPath{std::move(hops)};
  attrs.local_pref = local_pref;
  attrs.next_hop = net::Ipv4Addr{172, 16, 0, 1};
  return attrs;
}

TEST(AttrIntern, SameBundleSharesOneCanonicalInstance) {
  const auto a = AttrSetRef::intern(make_attrs({1, 2, 3}));
  const auto b = AttrSetRef::intern(make_attrs({1, 2, 3}));
  EXPECT_TRUE(a.same_set(b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(&*a, &*b);
}

TEST(AttrIntern, DistinctBundlesGetDistinctInstances) {
  const auto a = AttrSetRef::intern(make_attrs({1, 2, 3}));
  const auto b = AttrSetRef::intern(make_attrs({1, 2, 4}));
  const auto c = AttrSetRef::intern(make_attrs({1, 2, 3}, 200));
  EXPECT_FALSE(a.same_set(b));
  EXPECT_FALSE(a.same_set(c));
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(AttrIntern, DefaultRefPointsAtSharedDefaultBundle) {
  const AttrSetRef a;
  const AttrSetRef b;
  EXPECT_TRUE(a.same_set(b));
  EXPECT_EQ(*a, PathAttributes{});
}

TEST(AttrIntern, EqualityFallsBackToValueComparison) {
  // Build one ref outside the pool's canonical instance by value-comparing
  // against a plain bundle.
  const auto a = AttrSetRef::intern(make_attrs({7}));
  EXPECT_TRUE(a == make_attrs({7}));
  EXPECT_FALSE(a == make_attrs({8}));
}

TEST(AttrIntern, HitAndMissCountersAdvance) {
  const auto before = attr_pool_stats();
  const auto a = AttrSetRef::intern(make_attrs({90, 91, 92}));
  const auto mid = attr_pool_stats();
  EXPECT_EQ(mid.interns, before.interns + 1);
  EXPECT_EQ(mid.hits, before.hits);  // first sighting is a miss
  const auto b = AttrSetRef::intern(make_attrs({90, 91, 92}));
  const auto after = attr_pool_stats();
  EXPECT_EQ(after.interns, mid.interns + 1);
  EXPECT_EQ(after.hits, mid.hits + 1);
  EXPECT_TRUE(a.same_set(b));
}

TEST(AttrIntern, ExpiredEntriesAreSweptAndCanonicalIsReplaced) {
  attr_pool_purge();
  const void* first_instance = nullptr;
  {
    const auto a = AttrSetRef::intern(make_attrs({50, 51}));
    first_instance = &*a;
  }
  // The only holder died; the pool entry is now expired.
  attr_pool_purge();
  const auto stats = attr_pool_stats();
  EXPECT_EQ(stats.entries, stats.live);
  // Re-interning adopts a fresh canonical bundle (no stale revival).
  const auto b = AttrSetRef::intern(make_attrs({50, 51}));
  EXPECT_EQ(*b, make_attrs({50, 51}));
  (void)first_instance;  // address may legitimately be reused
}

TEST(AttrIntern, CanonicalSurvivesWhileAnyHolderLives) {
  const auto a = AttrSetRef::intern(make_attrs({60, 61}));
  attr_pool_purge();  // must not drop the live entry
  const auto b = AttrSetRef::intern(make_attrs({60, 61}));
  EXPECT_TRUE(a.same_set(b));
}

TEST(AttrIntern, PoolStaysBoundedUnderChurn) {
  attr_pool_purge();
  const auto base = attr_pool_stats();
  // Interning N distinct short-lived bundles must not grow the pool
  // without bound: the lazy sweep reclaims expired entries.
  for (std::uint32_t i = 0; i < 100000; ++i) {
    const auto r = AttrSetRef::intern(make_attrs({i & 0xffff, i >> 16}));
    ASSERT_EQ(r->as_path.length(), 2u);
  }
  attr_pool_purge();
  const auto after = attr_pool_stats();
  EXPECT_LE(after.entries, base.entries + 8);
  EXPECT_GT(after.purges, base.purges);
}

TEST(AttrIntern, HashCoversAllComparedFields) {
  const auto base = make_attrs({1});
  auto origin = base;
  origin.origin = Origin::kEgp;
  auto med = base;
  med.med = 5;
  auto lp = base;
  lp.local_pref = 7;
  auto nh = base;
  nh.next_hop = net::Ipv4Addr{10, 9, 8, 7};
  auto comm = base;
  comm.communities.push_back(0xdeadbeef);
  EXPECT_NE(hash_value(base), hash_value(origin));
  EXPECT_NE(hash_value(base), hash_value(med));
  EXPECT_NE(hash_value(base), hash_value(lp));
  EXPECT_NE(hash_value(base), hash_value(nh));
  EXPECT_NE(hash_value(base), hash_value(comm));
}

TEST(AttrIntern, MedZeroDistinctFromAbsent) {
  auto absent = make_attrs({1});
  auto zero = make_attrs({1});
  zero.med = 0;
  EXPECT_NE(hash_value(absent), hash_value(zero));
  const auto a = AttrSetRef::intern(absent);
  const auto z = AttrSetRef::intern(zero);
  EXPECT_FALSE(a.same_set(z));
  EXPECT_FALSE(a == z);
}

}  // namespace
}  // namespace bgpsdn::bgp
