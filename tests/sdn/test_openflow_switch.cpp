// OpenFlow-like codec round-trips plus switch/controller-base behaviour on
// a live network: handshake, table miss punts, FlowMod programming,
// PacketOut injection, PortStatus reporting.
#include <gtest/gtest.h>

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"
#include "net/network.hpp"
#include "sdn/controller_base.hpp"
#include "sdn/switch.hpp"

namespace bgpsdn::sdn {
namespace {

TEST(OfCodec, HelloRoundTrip) {
  const OfHello m{0x1234567890abcdefull, 12};
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<OfHello>(*back), m);
}

TEST(OfCodec, PacketInRoundTrip) {
  OfPacketIn m;
  m.in_port = core::PortId{3};
  m.reason = PacketInReason::kAction;
  m.packet.src = *net::Ipv4Addr::parse("10.0.0.1");
  m.packet.dst = *net::Ipv4Addr::parse("10.1.0.1");
  m.packet.proto = net::Protocol::kProbe;
  m.packet.ttl = 17;
  m.packet.flow_label = 99;
  m.packet.payload = {std::byte{1}, std::byte{2}, std::byte{3}};
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  const auto& got = std::get<OfPacketIn>(*back);
  EXPECT_EQ(got.in_port, m.in_port);
  EXPECT_EQ(got.reason, m.reason);
  EXPECT_EQ(got.packet.dst, m.packet.dst);
  EXPECT_EQ(got.packet.payload, m.packet.payload);
  EXPECT_EQ(got.packet.flow_label, 99u);
}

TEST(OfCodec, FlowModRoundTrip) {
  OfFlowMod m;
  m.command = FlowModCommand::kAdd;
  m.match.dst = *net::Prefix::parse("10.0.0.0/16");
  m.match.in_port = core::PortId{2};
  m.match.proto = net::Protocol::kBgp;
  m.priority = 200;
  m.action = FlowAction::output(core::PortId{5});
  m.epoch = 7;
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  const auto& got = std::get<OfFlowMod>(*back);
  EXPECT_EQ(got.match, m.match);
  EXPECT_EQ(got.priority, m.priority);
  EXPECT_EQ(got.action, m.action);
  EXPECT_EQ(got.epoch, 7u);
}

TEST(OfCodec, FlowModWildcardsRoundTrip) {
  OfFlowMod m;
  m.command = FlowModCommand::kDelete;
  m.match.dst = *net::Prefix::parse("10.0.0.0/16");
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  const auto& got = std::get<OfFlowMod>(*back);
  EXPECT_FALSE(got.match.in_port.has_value());
  EXPECT_FALSE(got.match.proto.has_value());
  EXPECT_EQ(got.command, FlowModCommand::kDelete);
}

TEST(OfCodec, PortStatusAndEchoRoundTrip) {
  const OfPortStatus ps{core::PortId{4}, false};
  EXPECT_EQ(std::get<OfPortStatus>(*decode(encode(ps))), ps);
  const OfEcho echo{0xdeadbeefull, true};
  EXPECT_EQ(std::get<OfEcho>(*decode(encode(echo))), echo);
}

TEST(OfCodec, RejectsTruncation) {
  auto wire = encode(OfHello{1, 2});
  wire.resize(wire.size() - 1);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(OfCodec, RejectsTrailingGarbage) {
  auto wire = encode(OfHello{1, 2});
  wire.push_back(std::byte{0});
  EXPECT_FALSE(decode(wire).has_value());
}

/// Minimal controller app recording callbacks.
class RecordingController : public ControllerBase {
 public:
  void on_switch_connected(const SwitchChannel& ch) override {
    connected.push_back(ch.dpid);
  }
  void on_packet_in(const SwitchChannel& ch, const OfPacketIn& in) override {
    packet_ins.push_back({ch.dpid, in.packet.dst});
    if (install_on_miss) {
      OfFlowMod mod;
      mod.match.dst = net::Prefix{in.packet.dst, 16};
      mod.priority = 100;
      mod.action = FlowAction::output(in.in_port);  // hairpin for the test
      send_flow_mod(ch.dpid, mod);
      send_packet_out(ch.dpid, in.in_port, in.packet);
    }
  }
  void on_port_status(const SwitchChannel& ch, const OfPortStatus& st) override {
    port_events.push_back({ch.dpid, st});
  }

  using ControllerBase::send_flow_mod;
  using ControllerBase::send_packet_out;

  std::vector<Dpid> connected;
  std::vector<std::pair<Dpid, net::Ipv4Addr>> packet_ins;
  std::vector<std::pair<Dpid, OfPortStatus>> port_events;
  bool install_on_miss{false};
};

class SinkNode : public net::Node {
 public:
  void handle_packet(core::PortId, const net::Packet& p) override {
    received.push_back(p);
  }
  std::vector<net::Packet> received;
};

class SwitchControllerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctrl = &net.add<RecordingController>("ctrl");
    sw = &net.add<SdnSwitch>("sw1", core::AsNumber{7});
    ext = &net.add<SinkNode>("ext");
    // Port 0 on the switch: control link; port 1: external node.
    const auto ctl = net.connect(ctrl->id(), sw->id());
    sw->set_controller_port(net.link(ctl).b.port);
    net.connect(ext->id(), sw->id());
    net.start_all();
    loop.run(loop.now() + core::Duration::seconds(1));
  }

  core::EventLoop loop;
  core::Logger log;
  core::Rng rng{1};
  net::Network net{loop, log, rng};
  RecordingController* ctrl{};
  SdnSwitch* sw{};
  SinkNode* ext{};
};

TEST_F(SwitchControllerTest, HandshakeRegistersSwitch) {
  ASSERT_EQ(ctrl->connected.size(), 1u);
  EXPECT_EQ(ctrl->connected[0], sw->dpid());
  EXPECT_TRUE(ctrl->is_connected(sw->dpid()));
  EXPECT_EQ(ctrl->switches().at(sw->dpid()).port_count, 2u);
}

TEST_F(SwitchControllerTest, TableMissPuntsToController) {
  net::Packet p;
  p.dst = *net::Ipv4Addr::parse("10.0.0.5");
  p.proto = net::Protocol::kProbe;
  net.send(ext->id(), core::PortId{0}, p);
  loop.run(loop.now() + core::Duration::seconds(1));
  ASSERT_EQ(ctrl->packet_ins.size(), 1u);
  EXPECT_EQ(ctrl->packet_ins[0].second, p.dst);
  EXPECT_EQ(sw->counters().table_misses, 1u);
}

TEST_F(SwitchControllerTest, ReactiveInstallForwardsSubsequentPackets) {
  ctrl->install_on_miss = true;
  net::Packet p;
  p.dst = *net::Ipv4Addr::parse("10.0.0.5");
  p.proto = net::Protocol::kProbe;
  net.send(ext->id(), core::PortId{0}, p);
  loop.run(loop.now() + core::Duration::seconds(1));
  // First packet went to controller and came back via PacketOut.
  EXPECT_EQ(ext->received.size(), 1u);
  EXPECT_EQ(sw->counters().flow_mods, 1u);
  EXPECT_EQ(sw->counters().packet_outs, 1u);

  // Second packet hits the installed rule, no new punt.
  net.send(ext->id(), core::PortId{0}, p);
  loop.run(loop.now() + core::Duration::seconds(1));
  EXPECT_EQ(ext->received.size(), 2u);
  EXPECT_EQ(ctrl->packet_ins.size(), 1u);
}

TEST_F(SwitchControllerTest, FlowModDeleteRemovesRule) {
  ctrl->install_on_miss = true;
  net::Packet p;
  p.dst = *net::Ipv4Addr::parse("10.0.0.5");
  p.proto = net::Protocol::kProbe;
  net.send(ext->id(), core::PortId{0}, p);
  loop.run(loop.now() + core::Duration::seconds(1));
  ASSERT_EQ(sw->table().size(), 1u);

  OfFlowMod del;
  del.command = FlowModCommand::kDelete;
  del.match.dst = *net::Prefix::parse("10.0.0.0/16");
  del.priority = 100;
  ctrl->send_flow_mod(sw->dpid(), del);
  loop.run(loop.now() + core::Duration::seconds(1));
  EXPECT_EQ(sw->table().size(), 0u);
}

TEST_F(SwitchControllerTest, PortStatusReachesController) {
  const auto link = net.find_link(ext->id(), sw->id());
  net.set_link_up(link, false);
  loop.run(loop.now() + core::Duration::seconds(1));
  ASSERT_EQ(ctrl->port_events.size(), 1u);
  EXPECT_EQ(ctrl->port_events[0].first, sw->dpid());
  EXPECT_FALSE(ctrl->port_events[0].second.up);

  net.set_link_up(link, true);
  loop.run(loop.now() + core::Duration::seconds(1));
  ASSERT_EQ(ctrl->port_events.size(), 2u);
  EXPECT_TRUE(ctrl->port_events[1].second.up);
}

TEST_F(SwitchControllerTest, StaleEpochFlowModsAreRejected) {
  // Epoch fencing: once the switch has seen programming from cluster epoch
  // 5, a deposed leader's epoch-3 FlowMod must be dropped on the floor.
  OfFlowMod current;
  current.match.dst = *net::Prefix::parse("10.1.0.0/16");
  current.priority = 100;
  current.action = FlowAction::output(core::PortId{1});
  current.epoch = 5;
  ctrl->send_flow_mod(sw->dpid(), current);
  loop.run(loop.now() + core::Duration::seconds(1));
  ASSERT_EQ(sw->table().size(), 1u);
  EXPECT_EQ(sw->max_epoch_seen(), 5u);

  OfFlowMod stale;
  stale.match.dst = *net::Prefix::parse("10.2.0.0/16");
  stale.priority = 100;
  stale.action = FlowAction::output(core::PortId{1});
  stale.epoch = 3;
  ctrl->send_flow_mod(sw->dpid(), stale);
  loop.run(loop.now() + core::Duration::seconds(1));
  EXPECT_EQ(sw->table().size(), 1u);
  EXPECT_EQ(sw->counters().stale_flowmods_rejected, 1u);
  EXPECT_EQ(sw->max_epoch_seen(), 5u);

  // Same-epoch programming (the serving leader) still lands.
  stale.epoch = 5;
  ctrl->send_flow_mod(sw->dpid(), stale);
  loop.run(loop.now() + core::Duration::seconds(1));
  EXPECT_EQ(sw->table().size(), 2u);
  EXPECT_EQ(sw->counters().stale_flowmods_rejected, 1u);
}

TEST_F(SwitchControllerTest, DropActionDrops) {
  OfFlowMod mod;
  mod.match.dst = *net::Prefix::parse("10.0.0.0/8");
  mod.priority = 50;
  mod.action = FlowAction::drop();
  ctrl->send_flow_mod(sw->dpid(), mod);
  loop.run(loop.now() + core::Duration::seconds(1));

  net::Packet p;
  p.dst = *net::Ipv4Addr::parse("10.0.0.5");
  p.proto = net::Protocol::kProbe;
  net.send(ext->id(), core::PortId{0}, p);
  loop.run(loop.now() + core::Duration::seconds(1));
  EXPECT_EQ(sw->counters().dropped, 1u);
  EXPECT_TRUE(ctrl->packet_ins.empty());
}

}  // namespace
}  // namespace bgpsdn::sdn
