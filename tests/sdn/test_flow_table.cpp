// Flow table semantics: priority, specificity, wildcards, statistics.
#include <gtest/gtest.h>

#include "sdn/flow.hpp"

namespace bgpsdn::sdn {
namespace {

net::Packet probe_to(const char* dst) {
  net::Packet p;
  p.dst = *net::Ipv4Addr::parse(dst);
  p.proto = net::Protocol::kProbe;
  return p;
}

FlowEntry entry(const char* dst, std::uint16_t prio, std::uint32_t out_port) {
  FlowEntry e;
  e.match.dst = *net::Prefix::parse(dst);
  e.priority = prio;
  e.action = FlowAction::output(core::PortId{out_port});
  return e;
}

TEST(FlowTable, HighestPriorityWins) {
  FlowTable t;
  t.add(entry("0.0.0.0/0", 1, 1));
  t.add(entry("0.0.0.0/0", 10, 2));
  const auto* hit = t.lookup(core::PortId{0}, probe_to("10.0.0.1"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action.port.value(), 2u);
}

TEST(FlowTable, LongerPrefixBreaksPriorityTie) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.1.0.0/16", 5, 2));
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.1.0.1"))->action.port.value(),
            2u);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.2.0.1"))->action.port.value(),
            1u);
}

TEST(FlowTable, InPortMatch) {
  FlowTable t;
  FlowEntry e = entry("0.0.0.0/0", 5, 7);
  e.match.in_port = core::PortId{3};
  t.add(e);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1")), nullptr);
  EXPECT_NE(t.lookup(core::PortId{3}, probe_to("10.0.0.1")), nullptr);
}

TEST(FlowTable, ProtocolMatch) {
  FlowTable t;
  FlowEntry e = entry("0.0.0.0/0", 5, 7);
  e.match.proto = net::Protocol::kBgp;
  t.add(e);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1")), nullptr);
  net::Packet bgp = probe_to("10.0.0.1");
  bgp.proto = net::Protocol::kBgp;
  EXPECT_NE(t.lookup(core::PortId{0}, bgp), nullptr);
}

TEST(FlowTable, AddReplacesSameMatchAndPriority) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.0.0.0/8", 5, 9));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1"))->action.port.value(),
            9u);
}

TEST(FlowTable, ReplacePreservesCounters) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.lookup(core::PortId{0}, probe_to("10.0.0.1"));
  t.add(entry("10.0.0.0/8", 5, 2));
  EXPECT_EQ(t.entries()[0].packets, 1u);
}

TEST(FlowTable, SameMatchDifferentPriorityCoexist) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.0.0.0/8", 6, 2));
  EXPECT_EQ(t.size(), 2u);
}

TEST(FlowTable, RemoveByMatchAndPriority) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.0.0.0/8", 6, 2));
  FlowMatch m;
  m.dst = *net::Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(t.remove(m, 5), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.remove(m, 5), 0u);
}

TEST(FlowTable, RemoveByDst) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.0.0.0/8", 6, 2));
  t.add(entry("11.0.0.0/8", 5, 3));
  EXPECT_EQ(t.remove_by_dst(*net::Prefix::parse("10.0.0.0/8")), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowTable, CountersAccumulate) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.lookup(core::PortId{0}, probe_to("10.0.0.1"));
  t.lookup(core::PortId{0}, probe_to("10.0.0.2"));
  t.lookup(core::PortId{0}, probe_to("10.0.0.3"), /*account=*/false);
  EXPECT_EQ(t.entries()[0].packets, 2u);
  EXPECT_GT(t.entries()[0].bytes, 0u);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("11.0.0.1")), nullptr);
}

TEST(FlowAction, Constructors) {
  EXPECT_EQ(FlowAction::drop().type, ActionType::kDrop);
  EXPECT_EQ(FlowAction::to_controller().type, ActionType::kToController);
  EXPECT_EQ(FlowAction::output(core::PortId{4}).port.value(), 4u);
  EXPECT_EQ(FlowAction::output(core::PortId{4}).to_string(), "output:4");
  EXPECT_EQ(FlowAction::drop().to_string(), "drop");
}

TEST(FlowEntry, ToStringIncludesEverything) {
  const auto e = entry("10.0.0.0/8", 5, 1);
  const auto s = e.to_string();
  EXPECT_NE(s.find("10.0.0.0/8"), std::string::npos);
  EXPECT_NE(s.find("prio=5"), std::string::npos);
  EXPECT_NE(s.find("output:1"), std::string::npos);
}

}  // namespace
}  // namespace bgpsdn::sdn
