// Flow table semantics: priority, specificity, wildcards, statistics.
#include <gtest/gtest.h>

#include "sdn/flow.hpp"

namespace bgpsdn::sdn {
namespace {

net::Packet probe_to(const char* dst) {
  net::Packet p;
  p.dst = *net::Ipv4Addr::parse(dst);
  p.proto = net::Protocol::kProbe;
  return p;
}

FlowEntry entry(const char* dst, std::uint16_t prio, std::uint32_t out_port) {
  FlowEntry e;
  e.match.dst = *net::Prefix::parse(dst);
  e.priority = prio;
  e.action = FlowAction::output(core::PortId{out_port});
  return e;
}

TEST(FlowTable, HighestPriorityWins) {
  FlowTable t;
  t.add(entry("0.0.0.0/0", 1, 1));
  t.add(entry("0.0.0.0/0", 10, 2));
  const auto* hit = t.lookup(core::PortId{0}, probe_to("10.0.0.1"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action.port.value(), 2u);
}

TEST(FlowTable, LongerPrefixBreaksPriorityTie) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.1.0.0/16", 5, 2));
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.1.0.1"))->action.port.value(),
            2u);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.2.0.1"))->action.port.value(),
            1u);
}

TEST(FlowTable, InPortMatch) {
  FlowTable t;
  FlowEntry e = entry("0.0.0.0/0", 5, 7);
  e.match.in_port = core::PortId{3};
  t.add(e);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1")), nullptr);
  EXPECT_NE(t.lookup(core::PortId{3}, probe_to("10.0.0.1")), nullptr);
}

TEST(FlowTable, ProtocolMatch) {
  FlowTable t;
  FlowEntry e = entry("0.0.0.0/0", 5, 7);
  e.match.proto = net::Protocol::kBgp;
  t.add(e);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1")), nullptr);
  net::Packet bgp = probe_to("10.0.0.1");
  bgp.proto = net::Protocol::kBgp;
  EXPECT_NE(t.lookup(core::PortId{0}, bgp), nullptr);
}

TEST(FlowTable, AddReplacesSameMatchAndPriority) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.0.0.0/8", 5, 9));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1"))->action.port.value(),
            9u);
}

TEST(FlowTable, ReplacePreservesCounters) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.lookup(core::PortId{0}, probe_to("10.0.0.1"));
  t.add(entry("10.0.0.0/8", 5, 2));
  EXPECT_EQ(t.entries()[0].packets, 1u);
}

TEST(FlowTable, SameMatchDifferentPriorityCoexist) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.0.0.0/8", 6, 2));
  EXPECT_EQ(t.size(), 2u);
}

TEST(FlowTable, RemoveByMatchAndPriority) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.0.0.0/8", 6, 2));
  FlowMatch m;
  m.dst = *net::Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(t.remove(m, 5), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.remove(m, 5), 0u);
}

TEST(FlowTable, RemoveByDst) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.add(entry("10.0.0.0/8", 6, 2));
  t.add(entry("11.0.0.0/8", 5, 3));
  EXPECT_EQ(t.remove_by_dst(*net::Prefix::parse("10.0.0.0/8")), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowTable, CountersAccumulate) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.lookup(core::PortId{0}, probe_to("10.0.0.1"));
  t.lookup(core::PortId{0}, probe_to("10.0.0.2"));
  t.lookup(core::PortId{0}, probe_to("10.0.0.3"), /*account=*/false);
  EXPECT_EQ(t.entries()[0].packets, 2u);
  EXPECT_GT(t.entries()[0].bytes, 0u);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("11.0.0.1")), nullptr);
}

TEST(FlowTable, InsertionOrderBreaksFullTie) {
  FlowTable t;
  // Same priority, same prefix length, both match: the first-inserted entry
  // must win (distinct in_port wildcarding keeps them separate entries).
  FlowEntry first = entry("10.0.0.0/8", 5, 1);
  FlowEntry second = entry("10.0.0.0/8", 5, 2);
  second.match.proto = net::Protocol::kProbe;
  t.add(first);
  t.add(second);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1"))->action.port.value(),
            1u);
}

TEST(FlowTable, PriorityBeatsLongerPrefix) {
  FlowTable t;
  // A more specific match must NOT shadow a higher-priority coarse rule —
  // the relay-plumbing band depends on this.
  t.add(entry("10.1.2.0/24", kDataRulePriority, 1));
  t.add(entry("10.0.0.0/8", kRelayRulePriority, 2));
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.1.2.3"))->action.port.value(),
            2u);
}

TEST(FlowTable, RemoveBelowPriorityKeepsIndexConsistent) {
  FlowTable t;
  t.add(entry("10.1.0.0/16", kDataRulePriority, 1));
  t.add(entry("10.2.0.0/16", kDataRulePriority, 2));
  t.add(entry("10.0.0.0/8", kRelayRulePriority, 3));
  EXPECT_EQ(t.remove_below_priority(kRelayRulePriority), 2u);
  // Lookups after the index rebuild still resolve through the survivor.
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.1.0.1"))->action.port.value(),
            3u);
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.2.0.1"))->action.port.value(),
            3u);
}

TEST(FlowTable, ClearResetsIndex) {
  FlowTable t;
  t.add(entry("10.0.0.0/8", 5, 1));
  t.clear();
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1")), nullptr);
  t.add(entry("10.0.0.0/8", 5, 2));
  EXPECT_EQ(t.lookup(core::PortId{0}, probe_to("10.0.0.1"))->action.port.value(),
            2u);
}

// The indexed lookup must agree with the reference linear scan on every
// probe, across mixed prefix lengths, priorities, wildcards, and full ties.
TEST(FlowTable, IndexedLookupMatchesLinearReference) {
  FlowTable t;
  t.add(entry("0.0.0.0/0", 1, 1));
  t.add(entry("10.0.0.0/8", kDataRulePriority, 2));
  t.add(entry("10.1.0.0/16", kDataRulePriority, 3));
  t.add(entry("10.1.2.0/24", kDataRulePriority, 4));
  t.add(entry("10.1.2.0/24", kRelayRulePriority, 5));
  t.add(entry("10.1.2.128/25", kDataRulePriority, 6));
  FlowEntry ported = entry("10.1.0.0/16", kDataRulePriority, 7);
  ported.match.in_port = core::PortId{9};
  t.add(ported);
  FlowEntry tied = entry("10.0.0.0/8", kDataRulePriority, 8);
  tied.match.proto = net::Protocol::kProbe;
  t.add(tied);

  const char* probes[] = {"10.1.2.200", "10.1.2.3",  "10.1.9.9",
                          "10.200.0.1", "192.0.2.1", "10.1.2.129"};
  for (const char* dst : probes) {
    for (std::uint32_t port : {0u, 9u}) {
      const auto* indexed =
          t.lookup(core::PortId{port}, probe_to(dst), /*account=*/false);
      const auto* linear = t.lookup_linear(core::PortId{port}, probe_to(dst));
      EXPECT_EQ(indexed, linear) << "dst=" << dst << " in_port=" << port;
    }
  }
}

TEST(FlowAction, Constructors) {
  EXPECT_EQ(FlowAction::drop().type, ActionType::kDrop);
  EXPECT_EQ(FlowAction::to_controller().type, ActionType::kToController);
  EXPECT_EQ(FlowAction::output(core::PortId{4}).port.value(), 4u);
  EXPECT_EQ(FlowAction::output(core::PortId{4}).to_string(), "output:4");
  EXPECT_EQ(FlowAction::drop().to_string(), "drop");
}

TEST(FlowEntry, ToStringIncludesEverything) {
  const auto e = entry("10.0.0.0/8", 5, 1);
  const auto s = e.to_string();
  EXPECT_NE(s.find("10.0.0.0/8"), std::string::npos);
  EXPECT_NE(s.find("prio=5"), std::string::npos);
  EXPECT_NE(s.find("output:1"), std::string::npos);
}

}  // namespace
}  // namespace bgpsdn::sdn
