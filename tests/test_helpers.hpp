// Shared fixtures for integration-style tests: a tiny harness that wires
// BgpRouters into a Network and runs the event loop.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bgp/router.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"
#include "net/address_allocator.hpp"
#include "net/network.hpp"

namespace bgpsdn::testing {

/// Builds ad-hoc router topologies without the full framework layer; used by
/// bgp-level tests so they do not depend on modules above them.
class MiniTopo {
 public:
  explicit MiniTopo(std::uint64_t seed = 42) : rng_{seed}, net_{loop_, log_, rng_} {
    log_.set_min_level(core::LogLevel::kInfo);
  }

  bgp::BgpRouter& add_router(std::uint32_t asn,
                             bgp::Timers timers = quick_timers()) {
    bgp::RouterConfig rc;
    rc.asn = core::AsNumber{asn};
    rc.router_id = alloc_.router_id(rc.asn);
    rc.timers = timers;
    auto& r = net_.add<bgp::BgpRouter>("AS" + std::to_string(asn), rc);
    routers_.push_back(&r);
    return r;
  }

  /// Full-transit peering between two routers over a fresh link.
  void peer(bgp::BgpRouter& a, bgp::BgpRouter& b,
            net::LinkParams lp = {core::Duration::millis(2), 0, 0.0},
            bgp::PolicyMode mode = bgp::PolicyMode::kFullTransit,
            bgp::Relationship a_sees_b = bgp::Relationship::kPeer) {
    const auto link = net_.connect(a.id(), b.id(), lp);
    const auto& l = net_.link(link);
    const auto p2p = alloc_.next_p2p();

    bgp::PeerConfig pa;
    pa.policy.mode = mode;
    pa.policy.relationship = a_sees_b;
    pa.local_address = p2p.left;
    pa.remote_address = p2p.right;
    pa.expected_peer_as = b.asn();
    a.add_peer(l.a.port, pa);

    bgp::PeerConfig pb;
    pb.policy.mode = mode;
    pb.policy.relationship = bgp::reverse(a_sees_b);
    pb.local_address = p2p.right;
    pb.remote_address = p2p.left;
    pb.expected_peer_as = a.asn();
    b.add_peer(l.b.port, pb);
  }

  void start() { net_.start_all(); }

  /// Run until the loop drains or `horizon` virtual time passes.
  void run_for(core::Duration horizon) {
    loop_.run(loop_.now() + horizon);
  }

  /// Timers scaled down so unit tests finish in microseconds of real time.
  static bgp::Timers quick_timers() {
    bgp::Timers t;
    t.mrai = core::Duration::millis(200);
    t.keepalive = core::Duration::seconds(5);
    t.hold = core::Duration::seconds(15);
    return t;
  }

  core::EventLoop& loop() { return loop_; }
  core::Logger& log() { return log_; }
  net::Network& net() { return net_; }
  net::AddressAllocator& alloc() { return alloc_; }
  std::vector<bgp::BgpRouter*>& routers() { return routers_; }

 private:
  core::EventLoop loop_;
  core::Logger log_;
  core::Rng rng_;
  net::Network net_;
  net::AddressAllocator alloc_;
  std::vector<bgp::BgpRouter*> routers_;
};

}  // namespace bgpsdn::testing
