// TopologySpec validation, generators, and dataset parse/synthesize paths.
#include <gtest/gtest.h>

#include "topology/datasets.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::topology {
namespace {

core::AsNumber as(std::uint32_t v) { return core::AsNumber{v}; }

TEST(TopologySpec, AddAndQuery) {
  TopologySpec spec;
  spec.add_as(as(1));
  spec.add_as(as(2));
  spec.add_as(as(1));  // idempotent
  EXPECT_EQ(spec.ases.size(), 2u);
  spec.add_link(as(1), as(2), bgp::Relationship::kCustomer);
  EXPECT_TRUE(spec.has_link(as(1), as(2)));
  EXPECT_TRUE(spec.has_link(as(2), as(1)));
  EXPECT_EQ(spec.degree(as(1)), 1u);
  spec.validate();
}

TEST(TopologySpec, RejectsBadLinks) {
  TopologySpec spec;
  spec.add_as(as(1));
  spec.add_as(as(2));
  EXPECT_THROW(spec.add_link(as(1), as(1)), std::invalid_argument);
  EXPECT_THROW(spec.add_link(as(1), as(9)), std::invalid_argument);
  spec.add_link(as(1), as(2));
  EXPECT_THROW(spec.add_link(as(2), as(1)), std::invalid_argument);
}

TEST(TopologySpec, ValidateCatchesManualCorruption) {
  TopologySpec spec;
  spec.add_as(as(1));
  spec.add_as(as(2));
  spec.links.push_back({as(1), as(2), bgp::Relationship::kPeer, {}});
  spec.links.push_back({as(2), as(1), bgp::Relationship::kPeer, {}});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(TopologySpec, SummaryMentionsModeAndCounts) {
  auto spec = clique(4);
  EXPECT_NE(spec.summary().find("4 ASes"), std::string::npos);
  EXPECT_NE(spec.summary().find("6 links"), std::string::npos);
  EXPECT_NE(spec.summary().find("full-transit"), std::string::npos);
}

TEST(Generators, CliqueEdgeCount) {
  for (const std::size_t n : {2u, 5u, 16u}) {
    const auto spec = clique(n);
    EXPECT_EQ(spec.ases.size(), n);
    EXPECT_EQ(spec.links.size(), n * (n - 1) / 2);
    spec.validate();
  }
}

TEST(Generators, LineRingStar) {
  EXPECT_EQ(line(5).links.size(), 4u);
  EXPECT_EQ(ring(5).links.size(), 5u);
  const auto s = star(5);
  EXPECT_EQ(s.links.size(), 4u);
  EXPECT_EQ(s.degree(as(1)), 4u);
  // Star hub is the provider.
  for (const auto& l : s.links) {
    EXPECT_EQ(l.a, as(1));
    EXPECT_EQ(l.a_sees_b, bgp::Relationship::kCustomer);
  }
}

TEST(Generators, BaseAsOffset) {
  const auto spec = clique(3, 100);
  EXPECT_TRUE(spec.has_as(as(100)));
  EXPECT_TRUE(spec.has_as(as(102)));
  EXPECT_FALSE(spec.has_as(as(1)));
}

TEST(Generators, BinaryTreeStructure) {
  const auto spec = binary_tree(3);  // 7 nodes
  EXPECT_EQ(spec.ases.size(), 7u);
  EXPECT_EQ(spec.links.size(), 6u);
  EXPECT_EQ(spec.degree(as(1)), 2u);   // root
  EXPECT_EQ(spec.degree(as(2)), 3u);   // internal
  EXPECT_EQ(spec.degree(as(7)), 1u);   // leaf
  spec.validate();
}

TEST(Generators, ErdosRenyiConnectedAndSeeded) {
  core::Rng rng1{5}, rng2{5};
  const auto a = erdos_renyi(20, 0.2, rng1);
  const auto b = erdos_renyi(20, 0.2, rng2);
  EXPECT_EQ(a.links.size(), b.links.size());  // deterministic per seed
  EXPECT_GE(a.links.size(), 20u);             // ring backbone present
  a.validate();
}

TEST(Generators, BarabasiAlbertDegreeSkew) {
  core::Rng rng{5};
  const auto spec = barabasi_albert(60, 2, rng);
  spec.validate();
  std::size_t dmax = 0;
  for (const auto asn : spec.ases) dmax = std::max(dmax, spec.degree(asn));
  // Preferential attachment produces hubs well above the minimum degree.
  EXPECT_GE(dmax, 8u);
}

TEST(Generators, InternetLikeIsValleyFreeShaped) {
  core::Rng rng{5};
  InternetLikeParams params;
  const auto spec = internet_like(params, rng);
  spec.validate();
  EXPECT_EQ(spec.policy_mode, bgp::PolicyMode::kGaoRexford);
  EXPECT_EQ(spec.ases.size(), params.tier1 + params.transit + params.stubs);
  // Tier-1s peer among themselves.
  EXPECT_TRUE(spec.has_link(as(1), as(2)));
  // Every stub has at least one provider.
  for (std::size_t i = 0; i < params.stubs; ++i) {
    const auto stub = as(static_cast<std::uint32_t>(
        1 + params.tier1 + params.transit + i));
    EXPECT_GE(spec.degree(stub), 1u) << stub.to_string();
  }
}

TEST(Datasets, CaidaParseBasics) {
  const std::string text =
      "# comment line\n"
      "1|2|-1\n"   // 1 provider of 2
      "2|3|0\n";   // peers
  const auto spec = parse_caida_text(text);
  EXPECT_EQ(spec.ases.size(), 3u);
  EXPECT_EQ(spec.links.size(), 2u);
  EXPECT_EQ(spec.policy_mode, bgp::PolicyMode::kGaoRexford);
  EXPECT_EQ(spec.links[0].a_sees_b, bgp::Relationship::kCustomer);
  EXPECT_EQ(spec.links[1].a_sees_b, bgp::Relationship::kPeer);
}

TEST(Datasets, CaidaRejectsMalformed) {
  EXPECT_THROW(parse_caida_text("1|2\n"), std::invalid_argument);
  EXPECT_THROW(parse_caida_text("1|2|5\n"), std::invalid_argument);
  EXPECT_THROW(parse_caida_text("x|2|0\n"), std::invalid_argument);
}

TEST(Datasets, CaidaRoundTrip) {
  const std::string text = "10|20|-1\n20|30|0\n";
  const auto spec = parse_caida_text(text);
  const auto out = to_caida_text(spec);
  const auto spec2 = parse_caida_text(out);
  EXPECT_EQ(spec2.links.size(), spec.links.size());
  EXPECT_EQ(spec2.links[0].a_sees_b, spec.links[0].a_sees_b);
}

TEST(Datasets, CaidaDuplicateLinesCollapse) {
  const auto spec = parse_caida_text("1|2|-1\n1|2|-1\n2|1|0\n");
  EXPECT_EQ(spec.links.size(), 1u);
}

TEST(Datasets, IplaneParseCollapsesPopsToAsLinks) {
  const std::string text =
      "# links\n"
      "100,0 200,1 20.0\n"
      "100,1 200,0 10.0\n"   // same AS pair, lower RTT wins
      "100,2 100,0 1.0\n"    // intra-AS: ignored
      "200,0 300,0 50.0\n";
  const auto spec = parse_iplane_text(text);
  EXPECT_EQ(spec.ases.size(), 3u);
  EXPECT_EQ(spec.links.size(), 2u);
  // Min RTT 10 ms -> one-way 5 ms.
  for (const auto& l : spec.links) {
    if ((l.a == as(100) && l.b == as(200)) || (l.a == as(200) && l.b == as(100))) {
      ASSERT_TRUE(l.delay.has_value());
      EXPECT_EQ(l.delay->count_nanos(), core::Duration::millis(5).count_nanos());
    }
  }
}

TEST(Datasets, IplaneRejectsMalformed) {
  EXPECT_THROW(parse_iplane_text("100 200 5\n"), std::invalid_argument);
  EXPECT_THROW(parse_iplane_text("100,0 200,0\n"), std::invalid_argument);
}

TEST(Datasets, SynthesizedCaidaParsesBack) {
  core::Rng rng{11};
  const auto text = synthesize_caida_text(40, rng);
  const auto spec = parse_caida_text(text);
  EXPECT_GE(spec.ases.size(), 30u);
  spec.validate();
  // The hierarchy has both relationship kinds.
  bool has_c2p = false, has_p2p = false;
  for (const auto& l : spec.links) {
    has_c2p = has_c2p || l.a_sees_b == bgp::Relationship::kCustomer;
    has_p2p = has_p2p || l.a_sees_b == bgp::Relationship::kPeer;
  }
  EXPECT_TRUE(has_c2p);
  EXPECT_TRUE(has_p2p);
}

TEST(Datasets, SynthesizedIplaneParsesBack) {
  core::Rng rng{11};
  const auto base = clique(6);
  const auto text = synthesize_iplane_text(base, rng);
  const auto spec = parse_iplane_text(text);
  EXPECT_EQ(spec.ases.size(), 6u);
  EXPECT_EQ(spec.links.size(), base.links.size());
}

TEST(Datasets, MergeRelationshipsOntoIplane) {
  core::Rng rng{11};
  const auto base = clique(4);                 // from "iPlane" adjacency
  const auto rel = parse_caida_text("1|2|-1\n3|4|0\n");
  const auto merged = merge_relationships(base, rel);
  EXPECT_EQ(merged.links.size(), base.links.size());
  EXPECT_EQ(merged.policy_mode, bgp::PolicyMode::kGaoRexford);
  for (const auto& l : merged.links) {
    if (l.a == as(1) && l.b == as(2)) {
      EXPECT_EQ(l.a_sees_b, bgp::Relationship::kCustomer);
    }
    if (l.a == as(1) && l.b == as(3)) {
      EXPECT_EQ(l.a_sees_b, bgp::Relationship::kPeer);  // default
    }
  }
}

// Parameterized sweep: every generator output must validate and be
// connected enough to emulate (degree >= 1 everywhere).
class GeneratorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorSweep, CliquesValidateAtAllSizes) {
  const auto n = GetParam();
  const auto spec = clique(n);
  spec.validate();
  for (const auto asn : spec.ases) {
    EXPECT_EQ(spec.degree(asn), n - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 24, 32));

}  // namespace
}  // namespace bgpsdn::topology
