// Deterministic JSON value: construction, dump stability, parse round-trip.
#include "telemetry/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace bgpsdn::telemetry {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json{nullptr}.dump(), "null");
  EXPECT_EQ(Json{true}.dump(), "true");
  EXPECT_EQ(Json{false}.dump(), "false");
  EXPECT_EQ(Json{std::int64_t{42}}.dump(), "42");
  EXPECT_EQ(Json{std::int64_t{-7}}.dump(), "-7");
  EXPECT_EQ(Json{1.5}.dump(), "1.5");
  EXPECT_EQ(Json{std::string{"hi"}}.dump(), "\"hi\"");
}

TEST(Json, ObjectKeysAreSorted) {
  Json j = Json::object();
  j["zebra"] = std::int64_t{1};
  j["alpha"] = std::int64_t{2};
  j["mid"] = std::int64_t{3};
  EXPECT_EQ(j.dump(), "{\"alpha\":2,\"mid\":3,\"zebra\":1}");
}

TEST(Json, NestedStructure) {
  Json j = Json::object();
  j["list"] = Json::array();
  j["list"].push_back(std::int64_t{1});
  j["list"].push_back(std::string{"two"});
  j["obj"]["inner"] = true;
  EXPECT_EQ(j.dump(), "{\"list\":[1,\"two\"],\"obj\":{\"inner\":true}}");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(Json{std::string{"a\"b\\c\n"}}.dump(), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(Json{std::string{"\x01"}}.dump(), "\"\\u0001\"");
}

TEST(Json, NonFiniteDoublesDumpAsNull) {
  EXPECT_EQ(Json{std::numeric_limits<double>::infinity()}.dump(), "null");
  EXPECT_EQ(Json{std::nan("")}.dump(), "null");
}

TEST(Json, ParseRoundTrip) {
  Json j = Json::object();
  j["n"] = std::int64_t{-3};
  j["f"] = 0.25;
  j["s"] = std::string{"esc\"aped\n"};
  j["arr"] = Json::array();
  j["arr"].push_back(nullptr);
  j["arr"].push_back(false);
  const std::string doc = j.dump();
  const auto parsed = Json::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, j);
  EXPECT_EQ(parsed->dump(), doc);
}

TEST(Json, ParseNumbers) {
  auto i = Json::parse("123");
  ASSERT_TRUE(i.has_value());
  EXPECT_TRUE(i->is_int());
  EXPECT_EQ(i->as_int(), 123);

  auto d = Json::parse("1.5e2");
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->is_double());
  EXPECT_DOUBLE_EQ(d->as_double(), 150.0);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("true trailing").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
}

TEST(Json, ParseUnicodeEscape) {
  const auto j = Json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "A\xc3\xa9");
}

TEST(Json, EqualityIsStructural) {
  Json a = Json::object();
  a["x"] = std::int64_t{1};
  Json b = Json::object();
  b["x"] = std::int64_t{1};
  EXPECT_EQ(a, b);
  b["x"] = std::int64_t{2};
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace bgpsdn::telemetry
