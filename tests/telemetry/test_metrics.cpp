// Counter/Gauge/Histogram semantics, with the histogram bucket-edge cases
// the log-linear layout must get right.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bgpsdn::telemetry {
namespace {

TEST(Counter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(Histogram, SingleValueIsExactEverywhere) {
  Histogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_EQ(h.quantile(0.0), 1234);
  EXPECT_EQ(h.quantile(0.5), 1234);
  EXPECT_EQ(h.quantile(1.0), 1234);
}

TEST(Histogram, ZeroSample) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-500);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.sum(), 0);
}

TEST(Histogram, MaxInt64DoesNotOverflowBucketMath) {
  Histogram h;
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  h.record(big);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), big);
  // Quantiles clamp to the exact max, even though the bucket is coarse.
  EXPECT_EQ(h.quantile(1.0), big);
  EXPECT_EQ(h.quantile(0.5), big);
}

TEST(Histogram, LinearRangeIsExact) {
  // Values below kSubCount each get their own bucket: quantiles are exact.
  Histogram h;
  for (std::int64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 15);
  const std::int64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 7);
  EXPECT_LE(p50, 8);
}

TEST(Histogram, BucketIndexMonotoneAndBoundsConsistent) {
  std::size_t prev = 0;
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{15}, std::int64_t{16},
        std::int64_t{17}, std::int64_t{31}, std::int64_t{32}, std::int64_t{100},
        std::int64_t{1000}, std::int64_t{1} << 40}) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "index not monotone at " << v;
    prev = idx;
    EXPECT_LE(Histogram::bucket_lower(idx), v) << "lower bound above " << v;
    EXPECT_GE(Histogram::bucket_upper(idx), v) << "upper bound below " << v;
  }
}

TEST(Histogram, PowerOfTwoEdges) {
  // 2^k and 2^k - 1 land in different buckets once past the linear range.
  EXPECT_NE(Histogram::bucket_index(31), Histogram::bucket_index(32));
  EXPECT_NE(Histogram::bucket_index(255), Histogram::bucket_index(256));
  // Within one sub-bucket's width, values share a bucket.
  EXPECT_EQ(Histogram::bucket_index(256), Histogram::bucket_index(256 + 15));
}

TEST(Histogram, QuantileRelativeErrorBounded) {
  Histogram h;
  for (std::int64_t v = 1; v <= 100000; ++v) h.record(v);
  // Log-linear with 16 sub-buckets → upper bound within ~6.25% of exact.
  const std::int64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 50000);
  EXPECT_LE(p50, 53200);
  const std::int64_t p99 = h.quantile(0.99);
  EXPECT_GE(p99, 99000);
  EXPECT_LE(p99, 105300);
}

TEST(Histogram, JsonSnapshotShape) {
  Histogram h;
  h.record(5);
  h.record(5);
  h.record(300);
  const Json j = h.to_json();
  EXPECT_EQ(j.find("count")->as_int(), 3);
  EXPECT_EQ(j.find("min")->as_int(), 5);
  EXPECT_EQ(j.find("max")->as_int(), 300);
  EXPECT_EQ(j.find("sum")->as_int(), 310);
  const Json* buckets = j.find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->size(), 2u);  // only non-empty buckets listed
  EXPECT_EQ(buckets->at(0).at(0).as_int(), 5);  // lower bound of first bucket
  EXPECT_EQ(buckets->at(0).at(1).as_int(), 2);  // its count
}

TEST(MetricsRegistry, StableRefsAndSnapshot) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.a");
  reg.counter("x.b").inc(2);
  a.inc(1);  // the ref stays valid across later insertions
  reg.gauge("g").set(-4);
  reg.histogram("h").record(7);

  EXPECT_EQ(reg.find_counter("x.a")->value(), 1);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  const Json snap = reg.snapshot();
  EXPECT_EQ(snap.find("counters")->find("x.a")->as_int(), 1);
  EXPECT_EQ(snap.find("counters")->find("x.b")->as_int(), 2);
  EXPECT_EQ(snap.find("gauges")->find("g")->as_int(), -4);
  EXPECT_EQ(snap.find("histograms")->find("h")->find("count")->as_int(), 1);
  // Deterministic dump: keys sorted, repeatable.
  EXPECT_EQ(snap.dump(), reg.snapshot().dump());
}

// D3 regression (see DESIGN.md §10): the registry sits on unordered maps,
// whose iteration order depends on insertion history. The snapshot must
// render byte-identically regardless, because every entry lands in a Json
// object that sorts its keys.
TEST(MetricsRegistry, SnapshotIndependentOfInsertionOrder) {
  const std::vector<std::string> names = {"bgp.updates", "sdn.flow_mods",
                                          "ctrl.recomputes", "bgp.withdraws",
                                          "net.pkts"};
  MetricsRegistry forward;
  for (const std::string& n : names) {
    forward.counter(n).inc(static_cast<std::int64_t>(n.size()));
    forward.gauge("g." + n).set(7);
    forward.histogram("h." + n).record(static_cast<std::int64_t>(n.size()));
  }
  MetricsRegistry reverse;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    reverse.counter(*it).inc(static_cast<std::int64_t>(it->size()));
    reverse.gauge("g." + *it).set(7);
    reverse.histogram("h." + *it).record(static_cast<std::int64_t>(it->size()));
  }
  // Byte-level diff of the rendered documents, not just structural equality.
  EXPECT_EQ(forward.snapshot().dump(), reverse.snapshot().dump());
}

TEST(MetricsRegistry, SnapshotKeysAreSorted) {
  MetricsRegistry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc();
  reg.counter("mid").inc();
  const Json snap = reg.snapshot();
  std::vector<std::string> keys;
  for (const auto& [name, value] : snap.find("counters")->entries()) {
    keys.push_back(name);
  }
  const std::vector<std::string> sorted_keys = {"alpha", "mid", "zeta"};
  EXPECT_EQ(keys, sorted_keys);
}

}  // namespace
}  // namespace bgpsdn::telemetry
