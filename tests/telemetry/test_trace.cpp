// Trace spans and sinks: JSONL round-trip, sink lifecycle, no-op cost path.
#include "telemetry/sinks.hpp"
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

namespace bgpsdn::telemetry {
namespace {

core::TimePoint at_ns(std::int64_t ns) {
  return core::TimePoint::from_nanos(ns);
}

TEST(TraceSpan, InstantHasZeroDuration) {
  const auto s = TraceSpan::instant(at_ns(42), "bgp", "fsm", "r1.s1");
  EXPECT_EQ(s.start, s.end);
  EXPECT_EQ(s.duration(), core::Duration::zero());
}

TEST(TraceSpan, JsonlLineIsDeterministic) {
  TraceSpan s{at_ns(1000), at_ns(3000), "ctrl", "recompute_batch", "idr.c0"};
  s.arg("prefixes", Json{std::int64_t{4}});
  const std::string line = span_to_jsonl(s);
  EXPECT_EQ(line,
            "{\"args\":{\"prefixes\":4},\"cat\":\"ctrl\",\"comp\":\"idr.c0\","
            "\"dur_ns\":2000,\"name\":\"recompute_batch\",\"t_ns\":1000}");
}

TEST(TraceSpan, JsonlRoundTripsThroughParser) {
  TraceSpan s{at_ns(5), at_ns(5), "bgp", "update_rx", "router-2"};
  s.arg("from", Json{std::string{"1.0.0.1"}});
  s.arg("nlri", Json{std::int64_t{1}});
  const auto parsed = Json::parse(span_to_jsonl(s));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("cat")->as_string(), "bgp");
  EXPECT_EQ(parsed->find("name")->as_string(), "update_rx");
  EXPECT_EQ(parsed->find("comp")->as_string(), "router-2");
  EXPECT_EQ(parsed->find("t_ns")->as_int(), 5);
  EXPECT_EQ(parsed->find("dur_ns")->as_int(), 0);
  EXPECT_EQ(parsed->find("args")->find("from")->as_string(), "1.0.0.1");
  EXPECT_EQ(parsed->find("args")->find("nlri")->as_int(), 1);
}

TEST(Telemetry, TracingFlagFollowsSinks) {
  Telemetry hub;
  EXPECT_FALSE(hub.tracing());
  JsonlTraceSink sink;
  const auto id = hub.add_sink(&sink);
  EXPECT_TRUE(hub.tracing());
  hub.remove_sink(id);
  EXPECT_FALSE(hub.tracing());
}

TEST(Telemetry, EmitFansOutToAllSinks) {
  Telemetry hub;
  JsonlTraceSink a, b;
  hub.add_sink(&a);
  hub.add_sink(&b);
  hub.emit(TraceSpan::instant(at_ns(1), "sdn", "flow_mod", "sw.3"));
  EXPECT_EQ(a.lines().size(), 1u);
  EXPECT_EQ(b.lines().size(), 1u);
  EXPECT_EQ(a.lines()[0], b.lines()[0]);
}

TEST(JsonlTraceSink, CapCountsDrops) {
  JsonlTraceSink sink{2};
  for (int i = 0; i < 5; ++i) {
    sink.on_span(TraceSpan::instant(at_ns(i), "bgp", "fsm", "x"));
  }
  EXPECT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  sink.clear();
  EXPECT_TRUE(sink.lines().empty());
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(JsonlTraceSink, JsonlBodyJoinsWithNewlines) {
  JsonlTraceSink sink;
  sink.on_span(TraceSpan::instant(at_ns(1), "bgp", "fsm", "x"));
  sink.on_span(TraceSpan::instant(at_ns(2), "bgp", "fsm", "y"));
  const std::string body = sink.jsonl();
  EXPECT_EQ(body, sink.lines()[0] + "\n" + sink.lines()[1] + "\n");
}

}  // namespace
}  // namespace bgpsdn::telemetry
