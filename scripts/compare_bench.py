#!/usr/bin/env python3
"""Performance gate: compare a bgpsdn.bench/1 JSON document to a baseline.

Usage:
    compare_bench.py CURRENT.json --baseline BASELINE.json [--tolerance 0.25]

Points are matched by label; the comparison metric is the median
seconds-per-iteration. A point regresses when it exceeds BOTH bounds:

    current_median > baseline_median * (1 + tolerance)
    current_median > baseline_median + min_delta

The absolute min-delta floor (default 25 ns) exists for the nano-scale
benches: a 20 ns lookup can drift several nanoseconds on a loaded machine
— a large *ratio* but meaningless as a regression signal — while for
micro- and millisecond-scale benches the floor is negligible and the
relative tolerance alone decides.

Exit status is non-zero if any shared label regresses. Labels present only
in the current document are reported as new (not a failure, so adding a
bench does not require regenerating the baseline in the same change);
labels present only in the baseline fail, since silently dropping a bench
would un-gate it — unless --allow-missing is given, for gating a reduced
sweep (e.g. a BGPSDN_QUICK run, which skips the largest cells) against a
full committed baseline.

Stdlib only, by design: the gate must run anywhere the benches build.
"""
import argparse
import json
import sys


def load_medians(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "bgpsdn.bench/1":
        sys.exit(f"{path}: not a bgpsdn.bench/1 document")
    medians = {}
    for point in doc.get("points", []):
        medians[point["label"]] = float(point["median"])
    return medians


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="bench JSON to gate")
    parser.add_argument("--baseline", required=True, help="reference bench JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-delta",
        type=float,
        default=25e-9,
        help="absolute slowdown (seconds) below which a point never "
        "regresses, regardless of ratio (default 25ns)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="baseline-only labels warn instead of failing (for gating a "
        "reduced/quick sweep against a full baseline)",
    )
    args = parser.parse_args()

    current = load_medians(args.current)
    baseline = load_medians(args.baseline)

    failures = []
    width = max((len(label) for label in baseline), default=10)
    for label in sorted(baseline):
        base = baseline[label]
        if label not in current:
            if args.allow_missing:
                print(f"{label:<{width}}  (not in this run, baseline-only)")
            else:
                failures.append(
                    f"{label}: present in baseline but missing from run"
                )
            continue
        cur = current[label]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if cur > base * (1.0 + args.tolerance) and cur > base + args.min_delta:
            verdict = "REGRESSED"
            failures.append(
                f"{label}: {cur:.3e}s vs baseline {base:.3e}s "
                f"({ratio:.2f}x, tolerance {1.0 + args.tolerance:.2f}x)"
            )
        print(f"{label:<{width}}  {cur:>10.3e}s  baseline {base:>10.3e}s  "
              f"{ratio:>5.2f}x  {verdict}")
    for label in sorted(set(current) - set(baseline)):
        print(f"{label:<{width}}  {current[label]:>10.3e}s  (new, no baseline)")

    if failures:
        print(f"\n{len(failures)} perf gate failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate ok: {len(baseline)} benches within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
