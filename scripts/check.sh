#!/usr/bin/env bash
# Full local check: configure, build, test, smoke-run benches and examples,
# then a ThreadSanitizer pass over the parallel trial machinery.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when installed; fall back to the default generator otherwise.
GENERATOR=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build "${GENERATOR[@]}"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

# Lint job: the project-invariant analyzer (tools/lint) must report zero
# fresh findings against the committed baseline over the whole repo —
# src, tools, bench, examples AND tests. Rules and the suppression pragma
# syntax are documented in DESIGN.md §10; regenerate the baseline with
# --write-baseline only when a finding is intentional, and fill in the
# reason every bgpsdn.lint/2 entry requires. --fail-stale keeps the waiver
# list honest: an entry that matches no current finding fails the gate.
# This run also re-exports the include graph; the committed copy in
# docs/include-graph.dot must match it (refresh step below).
echo "===== bgpsdn_lint"
mkdir -p build/json
./build/tools/lint/bgpsdn_lint --baseline lint_baseline.json --fail-stale \
  --dump-include-graph build/json/include-graph.dot
if ! cmp -s docs/include-graph.dot build/json/include-graph.dot; then
  cp build/json/include-graph.dot docs/include-graph.dot
  echo "docs/include-graph.dot was out of date; refreshed — commit it" >&2
  exit 1
fi
# Self-tests: one deliberately planted violation per analyzer pass must
# make the gate fail, so a silently broken pass can't hide behind a green
# suite. D1 covers the token scanner, A1 the include-graph pass, A2 the
# hot-path allocation pass, D4/D5 the emitter-ordering rules, and the
# stale check covers baseline bookkeeping.
LINT_TMP="$(mktemp -d)"
trap 'rm -rf "$LINT_TMP"' EXIT
cat > "$LINT_TMP/injected.cpp" <<'EOF'
#include <chrono>
long bad() {
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}
EOF
if ./build/tools/lint/bgpsdn_lint --quiet "$LINT_TMP/injected.cpp"; then
  echo "bgpsdn_lint self-test FAILED: injected D1 violation not reported" >&2
  exit 1
fi
mkdir -p "$LINT_TMP/src/core"
printf '#pragma once\n#include "framework/report.hpp"\n' \
  > "$LINT_TMP/src/core/injected_upward.hpp"
if ./build/tools/lint/bgpsdn_lint --quiet --layers tools/lint/layers.txt \
    "$LINT_TMP/src"; then
  echo "bgpsdn_lint self-test FAILED: upward include not reported" >&2
  exit 1
fi
cat > "$LINT_TMP/injected_hotpath.cpp" <<'EOF'
#include <memory>
// lint: hotpath(self-test: allocation below must be flagged)
int f() { auto p = std::make_unique<int>(1); return *p; }
EOF
if ./build/tools/lint/bgpsdn_lint --quiet "$LINT_TMP/injected_hotpath.cpp"; then
  echo "bgpsdn_lint self-test FAILED: hot-path allocation not reported" >&2
  exit 1
fi
cat > "$LINT_TMP/injected_ptrorder.cpp" <<'EOF'
#include "telemetry/json.hpp"
#include <set>
struct Node { int id; };
std::set<Node*> order_nodes() { return {}; }
EOF
if ./build/tools/lint/bgpsdn_lint --quiet "$LINT_TMP/injected_ptrorder.cpp"; then
  echo "bgpsdn_lint self-test FAILED: pointer-keyed set not reported" >&2
  exit 1
fi
cat > "$LINT_TMP/injected_floatorder.cpp" <<'EOF'
#include "telemetry/json.hpp"
#include <vector>
double total(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum;
}
EOF
if ./build/tools/lint/bgpsdn_lint --quiet \
    "$LINT_TMP/injected_floatorder.cpp"; then
  echo "bgpsdn_lint self-test FAILED: float accumulation not reported" >&2
  exit 1
fi
mkdir -p "$LINT_TMP/clean"
printf 'int stale_probe = 0;\n' > "$LINT_TMP/clean/ok.cpp"
cat > "$LINT_TMP/stale_baseline.json" <<'EOF'
{"schema":"bgpsdn.lint/2","findings":[{"file":"deleted_long_ago.cpp",
"line":1,"rule":"D1","token":"time()","message":"planted",
"reason":"self-test: waived code no longer exists"}]}
EOF
if ./build/tools/lint/bgpsdn_lint --quiet --fail-stale \
    --baseline "$LINT_TMP/stale_baseline.json" "$LINT_TMP/clean"; then
  echo "bgpsdn_lint self-test FAILED: stale waiver not rejected" >&2
  exit 1
fi
echo "bgpsdn_lint: self-tests ok (D1, A1, A2, D4, D5, stale waiver)"

# clang-tidy job: the curated check set in .clang-tidy runs over the
# compilation database exported by CMake. clang-tidy is an optional tool;
# soft-skip with a warning when it is not installed (same policy as the
# python3/jq fallbacks below).
echo "===== clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  mapfile -t TIDY_SOURCES < <(git ls-files 'src/*.cpp' 'tools/*.cpp')
  clang-tidy -p build --quiet "${TIDY_SOURCES[@]}"
else
  echo "WARNING: clang-tidy not found; skipping clang-tidy job" >&2
fi

# Quick (3-run) versions of every experiment bench, at the machine's
# parallelism (BGPSDN_JOBS caps the trial worker pool; see README).
for b in build/bench/bench_*; do
  echo "===== $b"
  BGPSDN_QUICK=1 BGPSDN_JOBS="$(nproc)" "$b"
done

# Examples and scenario scripts must run cleanly.
for e in quickstart internet_like video_stream subclusters; do
  echo "===== examples/$e"
  "./build/examples/$e" > /dev/null
done
./build/examples/withdrawal_clique 8 > /dev/null
for s in scenarios/*.bgpsdn; do
  echo "===== $s"
  ./build/tools/bgpsdn_run "$s" > /dev/null
  ./build/tools/bgpsdn_run --trials 4 "$s" > /dev/null
done
# Externally-supplied fault plans compose with any scenario.
echo "===== scenarios/chaos_recovery.bgpsdn --faults scenarios/chaos.plan"
./build/tools/bgpsdn_run --faults scenarios/chaos.plan \
  scenarios/chaos_recovery.bgpsdn > /dev/null
echo "===== scenarios/ha_chaos.bgpsdn --faults scenarios/ha_chaos.plan"
./build/tools/bgpsdn_run --faults scenarios/ha_chaos.plan \
  scenarios/ha_chaos.bgpsdn > /dev/null
# The churn scenario's link-flap train, with both recomputation engines:
# the printed output (routes, reachability, traces) must be byte-identical.
echo "===== scenarios/churn.bgpsdn --faults scenarios/churn.plan (both engines)"
mkdir -p build/json
./build/tools/bgpsdn_run --faults scenarios/churn.plan \
  scenarios/churn.bgpsdn > build/json/churn_incremental.out
sed 's/^spt incremental/spt reference/' scenarios/churn.bgpsdn \
  > build/json/churn_reference.bgpsdn
./build/tools/bgpsdn_run --faults scenarios/churn.plan \
  build/json/churn_reference.bgpsdn > build/json/churn_reference.out
diff build/json/churn_incremental.out build/json/churn_reference.out \
  || { echo "churn scenario diverges between SPT engines" >&2; exit 1; }

# HA chaos job: the replicated-controller scenario (elections, partition
# deposal, full degradation + recovery) must emit byte-identical trial JSON
# at BGPSDN_JOBS=1 and 4 — the determinism guard on the replica set's
# private rng fork, election jitter, and replication-channel timers.
echo "===== scenarios/ha_chaos.bgpsdn (jobs=1 vs 4)"
BGPSDN_JOBS=1 ./build/tools/bgpsdn_run --trials 4 \
  --json build/json/ha_j1.json scenarios/ha_chaos.bgpsdn > /dev/null
BGPSDN_JOBS=4 ./build/tools/bgpsdn_run --trials 4 \
  --json build/json/ha_j4.json scenarios/ha_chaos.bgpsdn > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'EOF'
import json, sys
docs = []
for jobs in (1, 4):
    with open(f"build/json/ha_j{jobs}.json") as f:
        doc = json.load(f)
    doc.pop("footer", None)  # wall-clock + jobs count legitimately differ
    docs.append(json.dumps(doc, sort_keys=True))
if docs[0] != docs[1]:
    sys.exit("ha_chaos: trial JSON differs between BGPSDN_JOBS=1 and 4")
print("ha_chaos: byte-identical across jobs counts (footer excluded)")
EOF
else
  echo "WARNING: python3 not found; skipping ha_chaos determinism diff" >&2
fi

# Matrix-runner job: every shipped .matrix file must expand, and the smoke
# matrix (2x2x2 on a 5-AS clique) must emit byte-identical summary JSON at
# BGPSDN_JOBS=1 and 4 (footer excluded) — the determinism guard on the
# ExperimentSpec/MatrixSpec path. --filter subsetting rides along.
echo "===== scenarios/smoke.matrix (bgpsdn_matrix, jobs=1 vs 4)"
for m in scenarios/*.matrix; do
  ./build/tools/bgpsdn_matrix --list "$m" > /dev/null
done
BGPSDN_QUICK=1 BGPSDN_JOBS=1 ./build/tools/bgpsdn_matrix \
  --json build/json/matrix_j1.json scenarios/smoke.matrix > /dev/null
BGPSDN_QUICK=1 BGPSDN_JOBS=4 ./build/tools/bgpsdn_matrix \
  --json build/json/matrix_j4.json scenarios/smoke.matrix > /dev/null
BGPSDN_QUICK=1 BGPSDN_JOBS=4 ./build/tools/bgpsdn_matrix \
  --filter event=withdrawal --json build/json/matrix_filtered.json \
  scenarios/smoke.matrix > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'EOF'
import json, sys
docs = []
for jobs in (1, 4):
    with open(f"build/json/matrix_j{jobs}.json") as f:
        doc = json.load(f)
    doc.pop("footer", None)  # wall-clock + jobs count legitimately differ
    docs.append(json.dumps(doc, sort_keys=True))
if docs[0] != docs[1]:
    sys.exit("matrix: summary JSON differs between BGPSDN_JOBS=1 and 4")
print("matrix: byte-identical across jobs counts (footer excluded)")
EOF
else
  echo "WARNING: python3 not found; skipping matrix determinism diff" >&2
fi

# JSON-output job: every --json emitter must produce a document that still
# matches the frozen bgpsdn.bench/1 schema. Validated with the stdlib-only
# python checker; falls back to a structural jq check; warns when neither
# tool is installed.
echo "===== bench json schema"
mkdir -p build/json
BGPSDN_QUICK=1 BGPSDN_JOBS="$(nproc)" \
  ./build/bench/bench_fig2_withdrawal --json build/json/fig2.json > /dev/null
BGPSDN_QUICK=1 BGPSDN_JOBS="$(nproc)" \
  ./build/bench/bench_chaos --json build/json/chaos.json > /dev/null
BGPSDN_QUICK=1 BGPSDN_JOBS="$(nproc)" \
  ./build/bench/bench_ablation_recompute --json build/json/ablation.json \
  > /dev/null
./build/tools/bgpsdn_run --json build/json/run_single.json \
  scenarios/fig2_point.bgpsdn > /dev/null
./build/tools/bgpsdn_run --trials 4 --json build/json/run_trials.json \
  scenarios/fig2_point.bgpsdn > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/validate_bench_json.py \
    build/json/fig2.json build/json/chaos.json build/json/ablation.json \
    build/json/run_single.json build/json/run_trials.json \
    build/json/matrix_j1.json build/json/matrix_filtered.json
elif command -v jq > /dev/null 2>&1; then
  for j in build/json/fig2.json build/json/chaos.json \
           build/json/run_single.json \
           build/json/run_trials.json \
           build/json/matrix_j1.json; do
    jq -e '.schema == "bgpsdn.bench/1"
           and (.bench | type == "string")
           and (.params | type == "object")
           and (.points | type == "array")
           and (.counters | type == "object")
           and (.footer | has("trials") and has("jobs") and has("wall_s"))' \
      "$j" > /dev/null || { echo "schema drift in $j" >&2; exit 1; }
    echo "$j: ok (jq)"
  done
else
  echo "WARNING: neither python3 nor jq found; skipping JSON schema check" >&2
fi

# Determinism job: the same seeded bench must emit byte-identical points and
# counters whether trials run serially or on a 4-worker pool. Only the
# footer (wall-clock timings, jobs count) may differ. This is the
# end-to-end guard on the interning pools, shared encode buffers, and the
# reworked event loop: any cross-trial state leak shows up here.
echo "===== bench json determinism (BGPSDN_JOBS=1 vs 4)"
if command -v python3 > /dev/null 2>&1; then
  BGPSDN_QUICK=1 BGPSDN_JOBS=1 \
    ./build/bench/bench_fig2_withdrawal --json build/json/fig2_j1.json > /dev/null
  BGPSDN_QUICK=1 BGPSDN_JOBS=4 \
    ./build/bench/bench_fig2_withdrawal --json build/json/fig2_j4.json > /dev/null
  BGPSDN_QUICK=1 BGPSDN_JOBS=1 \
    ./build/bench/bench_chaos --json build/json/chaos_j1.json > /dev/null
  BGPSDN_QUICK=1 BGPSDN_JOBS=4 \
    ./build/bench/bench_chaos --json build/json/chaos_j4.json > /dev/null
  BGPSDN_QUICK=1 BGPSDN_JOBS=1 \
    ./build/bench/bench_ablation_recompute --json build/json/ablation_j1.json \
    > /dev/null
  BGPSDN_QUICK=1 BGPSDN_JOBS=4 \
    ./build/bench/bench_ablation_recompute --json build/json/ablation_j4.json \
    > /dev/null
  BGPSDN_JOBS=1 ./build/tools/bgpsdn_run --trials 4 \
    --json build/json/trials_j1.json scenarios/fig2_point.bgpsdn > /dev/null
  BGPSDN_JOBS=4 ./build/tools/bgpsdn_run --trials 4 \
    --json build/json/trials_j4.json scenarios/fig2_point.bgpsdn > /dev/null
  python3 - <<'EOF'
import json, sys
for name in ("fig2", "chaos", "ablation", "trials"):
    docs = []
    for jobs in (1, 4):
        with open(f"build/json/{name}_j{jobs}.json") as f:
            doc = json.load(f)
        doc.pop("footer", None)  # wall-clock + jobs count legitimately differ
        docs.append(json.dumps(doc, sort_keys=True))
    if docs[0] != docs[1]:
        sys.exit(f"{name}: bench JSON differs between BGPSDN_JOBS=1 and 4")
    print(f"{name}: byte-identical across jobs counts (footer excluded)")
EOF
else
  echo "WARNING: python3 not found; skipping determinism diff" >&2
fi

# Scale job: the RIB-compaction sweep (capped at 1k ASes under BGPSDN_QUICK)
# must emit byte-identical JSON across job counts, match the bench_scale
# schema — including the mem.* block and the compact-vs-reference RIB
# memory-ratio gate baked into the validator — and hold its convergence
# medians against the committed full-sweep baseline. Medians are virtual
# time (deterministic per seed), so the tolerance is near-zero; the quick
# sweep skips the 10k cells, hence --allow-missing. Refresh after an
# intentional change with:
#   ./build/bench/bench_scale --json BENCH_baseline_scale.json
echo "===== bench_scale (jobs=1 vs 4, schema, perf gate)"
if command -v python3 > /dev/null 2>&1; then
  BGPSDN_QUICK=1 BGPSDN_JOBS=1 \
    ./build/bench/bench_scale --json build/json/scale_j1.json > /dev/null
  BGPSDN_QUICK=1 BGPSDN_JOBS=4 \
    ./build/bench/bench_scale --json build/json/scale_j4.json > /dev/null
  python3 - <<'EOF'
import json, sys
docs = []
for jobs in (1, 4):
    with open(f"build/json/scale_j{jobs}.json") as f:
        doc = json.load(f)
    doc.pop("footer", None)  # wall-clock + jobs count legitimately differ
    docs.append(json.dumps(doc, sort_keys=True))
if docs[0] != docs[1]:
    sys.exit("bench_scale: JSON differs between BGPSDN_JOBS=1 and 4")
print("bench_scale: byte-identical across jobs counts (footer excluded)")
EOF
  python3 scripts/validate_bench_json.py build/json/scale_j1.json
  python3 scripts/compare_bench.py build/json/scale_j1.json \
    --baseline BENCH_baseline_scale.json --tolerance 0.01 --allow-missing
else
  echo "WARNING: python3 not found; skipping bench_scale checks" >&2
fi

# Perf job: micro-bench medians gated against the committed baseline.
# Tolerance is generous (25%) because this runs on whatever machine the
# developer has; it exists to catch order-of-magnitude regressions in the
# hot paths (event loop, flow lookup, fan-out encode, interning), not to
# police noise. Refresh the baseline with:
#   ./build/bench/bench_micro --json BENCH_baseline.json
echo "===== perf gate"
if command -v python3 > /dev/null 2>&1; then
  ./build/bench/bench_micro --json build/json/micro.json > /dev/null
  python3 scripts/compare_bench.py build/json/micro.json \
    --baseline BENCH_baseline.json --tolerance 0.25
  # Churn-ablation gate against its own baseline: the medians are virtual
  # time (deterministic), so any drift means the recomputation change
  # altered convergence behaviour. Refresh after an intentional change with:
  #   BGPSDN_QUICK=1 ./build/bench/bench_ablation_recompute \
  #     --json BENCH_baseline_recompute.json
  python3 scripts/compare_bench.py build/json/ablation.json \
    --baseline BENCH_baseline_recompute.json --tolerance 0.01
  # Failover gate against the committed HA baseline: bench_chaos medians are
  # virtual time (deterministic), so any drift means an election-timing or
  # replication change altered recovery behaviour. Refresh after an
  # intentional change with:
  #   BGPSDN_QUICK=1 ./build/bench/bench_chaos --json BENCH_baseline_ha.json
  python3 scripts/compare_bench.py build/json/chaos.json \
    --baseline BENCH_baseline_ha.json --tolerance 0.01
else
  echo "WARNING: python3 not found; skipping perf gate" >&2
fi

# ASan+UBSan job: the fault-injection, crash-recovery and corruption-fuzz
# paths deliberately feed sessions garbage bytes and tear subsystems down
# mid-flight — exactly where lifetime and UB bugs would hide. Rebuild with
# both sanitizers and run every fault/chaos/fuzz test, plus the refcounted
# hot-path machinery: the attribute-interning pool (weak_ptr sweep,
# canonical lifetime), the shared encode buffers, the COW byte payloads,
# and the slot-slab event loop under churn.
echo "===== asan+ubsan"
cmake -B build-asan "${GENERATOR[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "$(nproc)" \
  --target test_framework test_bgp test_net test_core test_controller bgpsdn_run
./build-asan/tests/test_framework \
  --gtest_filter='FaultPlanParse.*:FaultInjector.*:FaultDsl.*:FaultDeterminism.*:CrashRecovery.*'
./build-asan/tests/test_controller --gtest_filter='ReplicaSet*'
# The HA chaos scenario + plan under ASan: elections, partition deposal and
# the degrade/recover hooks all tear subsystems down mid-flight.
./build-asan/tools/bgpsdn_run --faults scenarios/ha_chaos.plan \
  scenarios/ha_chaos.bgpsdn > /dev/null
./build-asan/tests/test_bgp \
  --gtest_filter='*CodecFuzz*:*LiveSessionFuzz*:AttrIntern.*:EncodeShared.*'
./build-asan/tests/test_net \
  --gtest_filter='*LinkParams*:*RuntimeLoss*:*Corruption*:Bytes.*'
./build-asan/tests/test_core --gtest_filter='EventLoop.*'

# ThreadSanitizer job: rebuild the test binaries with -fsanitize=thread and
# run everything that exercises the parallel trial runners. Simulations are
# single-threaded by design; this guards the one place threads meet — the
# trial pool and seed-ordered result collection.
echo "===== tsan"
cmake -B build-tsan "${GENERATOR[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$(nproc)" \
  --target test_framework test_core test_controller
./build-tsan/tests/test_framework \
  --gtest_filter='Determinism.*:FaultDeterminism.*:TrialRunnerParallel.*:ParamSweepRunnerParallel.*:ParallelForIndex.*:DefaultJobs.*:IncrementalEquivalence.ByteIdenticalAcrossJobCounts'
./build-tsan/tests/test_core --gtest_filter='EventLoop.*'
./build-tsan/tests/test_controller --gtest_filter='ReplicaSetDeterminism.*'

echo "ALL CHECKS PASSED"
