#!/usr/bin/env bash
# Full local check: configure, build, test, smoke-run benches and examples.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Quick (3-run) versions of every experiment bench.
for b in build/bench/bench_*; do
  echo "===== $b"
  BGPSDN_QUICK=1 "$b"
done

# Examples and scenario scripts must run cleanly.
for e in quickstart internet_like video_stream subclusters; do
  echo "===== examples/$e"
  "./build/examples/$e" > /dev/null
done
./build/examples/withdrawal_clique 8 > /dev/null
for s in scenarios/*.bgpsdn; do
  echo "===== $s"
  ./build/tools/bgpsdn_run "$s" > /dev/null
done
echo "ALL CHECKS PASSED"
