#!/usr/bin/env bash
# Full local check: configure, build, test, smoke-run benches and examples,
# then a ThreadSanitizer pass over the parallel trial machinery.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when installed; fall back to the default generator otherwise.
GENERATOR=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build "${GENERATOR[@]}"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

# Quick (3-run) versions of every experiment bench, at the machine's
# parallelism (BGPSDN_JOBS caps the trial worker pool; see README).
for b in build/bench/bench_*; do
  echo "===== $b"
  BGPSDN_QUICK=1 BGPSDN_JOBS="$(nproc)" "$b"
done

# Examples and scenario scripts must run cleanly.
for e in quickstart internet_like video_stream subclusters; do
  echo "===== examples/$e"
  "./build/examples/$e" > /dev/null
done
./build/examples/withdrawal_clique 8 > /dev/null
for s in scenarios/*.bgpsdn; do
  echo "===== $s"
  ./build/tools/bgpsdn_run "$s" > /dev/null
  ./build/tools/bgpsdn_run --trials 4 "$s" > /dev/null
done
# Externally-supplied fault plans compose with any scenario.
echo "===== scenarios/chaos_recovery.bgpsdn --faults scenarios/chaos.plan"
./build/tools/bgpsdn_run --faults scenarios/chaos.plan \
  scenarios/chaos_recovery.bgpsdn > /dev/null

# JSON-output job: every --json emitter must produce a document that still
# matches the frozen bgpsdn.bench/1 schema. Validated with the stdlib-only
# python checker; falls back to a structural jq check; warns when neither
# tool is installed.
echo "===== bench json schema"
mkdir -p build/json
BGPSDN_QUICK=1 BGPSDN_JOBS="$(nproc)" \
  ./build/bench/bench_fig2_withdrawal --json build/json/fig2.json > /dev/null
BGPSDN_QUICK=1 BGPSDN_JOBS="$(nproc)" \
  ./build/bench/bench_chaos --json build/json/chaos.json > /dev/null
./build/tools/bgpsdn_run --json build/json/run_single.json \
  scenarios/fig2_point.bgpsdn > /dev/null
./build/tools/bgpsdn_run --trials 4 --json build/json/run_trials.json \
  scenarios/fig2_point.bgpsdn > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/validate_bench_json.py \
    build/json/fig2.json build/json/chaos.json \
    build/json/run_single.json build/json/run_trials.json
elif command -v jq > /dev/null 2>&1; then
  for j in build/json/fig2.json build/json/chaos.json \
           build/json/run_single.json \
           build/json/run_trials.json; do
    jq -e '.schema == "bgpsdn.bench/1"
           and (.bench | type == "string")
           and (.params | type == "object")
           and (.points | type == "array")
           and (.counters | type == "object")
           and (.footer | has("trials") and has("jobs") and has("wall_s"))' \
      "$j" > /dev/null || { echo "schema drift in $j" >&2; exit 1; }
    echo "$j: ok (jq)"
  done
else
  echo "WARNING: neither python3 nor jq found; skipping JSON schema check" >&2
fi

# ASan+UBSan job: the fault-injection, crash-recovery and corruption-fuzz
# paths deliberately feed sessions garbage bytes and tear subsystems down
# mid-flight — exactly where lifetime and UB bugs would hide. Rebuild with
# both sanitizers and run every fault/chaos/fuzz test.
echo "===== asan+ubsan"
cmake -B build-asan "${GENERATOR[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "$(nproc)" \
  --target test_framework test_bgp test_net
./build-asan/tests/test_framework \
  --gtest_filter='FaultPlanParse.*:FaultInjector.*:FaultDsl.*:FaultDeterminism.*:CrashRecovery.*'
./build-asan/tests/test_bgp --gtest_filter='*CodecFuzz*:*LiveSessionFuzz*'
./build-asan/tests/test_net \
  --gtest_filter='*LinkParams*:*RuntimeLoss*:*Corruption*'

# ThreadSanitizer job: rebuild the test binaries with -fsanitize=thread and
# run everything that exercises the parallel trial runners. Simulations are
# single-threaded by design; this guards the one place threads meet — the
# trial pool and seed-ordered result collection.
echo "===== tsan"
cmake -B build-tsan "${GENERATOR[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$(nproc)" --target test_framework test_core
./build-tsan/tests/test_framework \
  --gtest_filter='Determinism.*:FaultDeterminism.*:TrialRunnerParallel.*:ParamSweepRunnerParallel.*:ParallelForIndex.*:DefaultJobs.*'
./build-tsan/tests/test_core --gtest_filter='EventLoop.*'

echo "ALL CHECKS PASSED"
