#!/usr/bin/env python3
"""Validate a bgpsdn.bench/1 JSON document against the frozen schema.

Usage: validate_bench_json.py FILE...

Exit 0 when every file conforms; exit 1 (with a message naming the first
offence) on schema drift. Only the standard library is used.

The schema (see src/framework/report.hpp):
  schema    "bgpsdn.bench/1"
  bench     non-empty string
  params    object (free-form scalar values)
  points    array of {label, n, min, q1, median, q3, max, mean, stddev,
                      values[], extra{}}
  counters  object of integer values
  footer    {trials, jobs, wall_s, serial_equivalent_s, speedup,
             trials_per_s}
"""
import json
import sys

SCHEMA = "bgpsdn.bench/1"
TOP_KEYS = {"schema", "bench", "params", "points", "counters", "footer"}
POINT_KEYS = {
    "label", "n", "min", "q1", "median", "q3", "max", "mean", "stddev",
    "values", "extra",
}
FOOTER_KEYS = {
    "trials", "jobs", "wall_s", "serial_equivalent_s", "speedup",
    "trials_per_s",
}
NUMBER = (int, float)

# bench_chaos documents additionally promise these fields: the sweep
# parameters and, on every point, the armed fault plan.
CHAOS_PARAMS = {"clique_size", "members", "runs", "timeout_s"}
CHAOS_LABELS = {
    "bgp_linkfail", "hybrid_linkfail", "degraded_linkfail", "ctrl_crash",
    "ctrl_restart", "speaker_restart",
    "ha_failover_r1", "ha_failover_r2", "ha_failover_r3", "ha_failover_r4",
    "ha_failover_r5",
}
# Replication-factor sweep points additionally carry the failover-hiccup
# observables. r1 is the single-controller baseline (full degradation);
# r>=2 must beat it, and beat it into the sub-second regime.
CHAOS_HA_EXTRAS = (
    "replicas", "flow_mods_replayed_median", "election_latency_s_median",
)

# ablation_recompute documents carry two sweeps: the recompute-delay sweep
# (each point reporting the recompute_batch span cost) and the churn
# ablation (incremental vs reference engine pairs whose convergence medians
# must be virtual-time-identical while the incremental settle work is at
# least 5x below the reference).
ABLATION_DELAY_LABELS = {
    "delay0.0s", "delay0.5s", "delay1.0s", "delay2.0s", "delay4.0s",
    "delay8.0s",
}
ABLATION_CHURN_FLAPS = (2, 6, 12)
ABLATION_CHURN_EXTRAS = (
    "prefix_recomputes_median", "settles_median", "flow_mods_median",
)


# bench_scale documents sweep the AS count: internet-like and synthetic-
# CAIDA convergence cells derived from the declared size lists, plus a
# memory-comparison pair (same seeded trial under both RIB layouts) whose
# extras carry the deterministic mem model bytes. The compact layout must
# undercut the reference layout's RIB bytes fivefold, and the pair's
# convergence values must be byte-identical (the layouts may differ only in
# memory accounting, never in behaviour).
SCALE_PARAMS = {
    "il_sizes", "caida_sizes", "mem_size", "origins", "prefixes_per_origin",
    "runs",
}
SCALE_POINT_EXTRAS = ("ases", "updates_rx_median", "decision_runs_median")
MEM_KEYS = {
    "rib_in", "loc_rib", "rib_out", "rib_total", "attr_pool",
    "attr_registry", "flow_tables", "speaker_ribs", "total",
}
SCALE_MEM_RATIO = 5


# bgpsdn_matrix documents describe the expanded cross product: the declared
# axes (object of value-string arrays), and on every point the cell's
# coordinates, which must name exactly the declared axes with declared
# values. "filters" appears only when --filter subset the product.
MATRIX_PARAMS = {"matrix", "file", "trials", "base_seed", "axes"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if set(doc) != TOP_KEYS:
        fail(path, f"top-level keys {sorted(doc)} != {sorted(TOP_KEYS)}")
    if doc["schema"] != SCHEMA:
        fail(path, f"schema {doc['schema']!r} != {SCHEMA!r}")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail(path, "bench must be a non-empty string")
    if not isinstance(doc["params"], dict):
        fail(path, "params must be an object")

    if not isinstance(doc["points"], list):
        fail(path, "points must be an array")
    for i, point in enumerate(doc["points"]):
        where = f"points[{i}]"
        if not isinstance(point, dict):
            fail(path, f"{where} is not an object")
        if set(point) != POINT_KEYS:
            fail(path, f"{where} keys {sorted(point)} != {sorted(POINT_KEYS)}")
        if not isinstance(point["label"], str):
            fail(path, f"{where}.label must be a string")
        if not isinstance(point["n"], int) or point["n"] < 0:
            fail(path, f"{where}.n must be a non-negative integer")
        for key in ("min", "q1", "median", "q3", "max", "mean", "stddev"):
            if not isinstance(point[key], NUMBER):
                fail(path, f"{where}.{key} must be a number")
        if not isinstance(point["values"], list) or any(
            not isinstance(v, NUMBER) for v in point["values"]
        ):
            fail(path, f"{where}.values must be an array of numbers")
        if len(point["values"]) != point["n"]:
            fail(path, f"{where}: n={point['n']} but {len(point['values'])} values")
        if not isinstance(point["extra"], dict):
            fail(path, f"{where}.extra must be an object")

    if not isinstance(doc["counters"], dict) or any(
        not isinstance(v, int) for v in doc["counters"].values()
    ):
        fail(path, "counters must be an object of integers")

    footer = doc["footer"]
    if not isinstance(footer, dict) or set(footer) != FOOTER_KEYS:
        fail(path, f"footer keys != {sorted(FOOTER_KEYS)}")
    for key in FOOTER_KEYS:
        if not isinstance(footer[key], NUMBER):
            fail(path, f"footer.{key} must be a number")
    for key in ("trials", "jobs"):
        if not isinstance(footer[key], int) or footer[key] < 0:
            fail(path, f"footer.{key} must be a non-negative integer")

    if doc["bench"] == "bench_chaos":
        validate_chaos(path, doc)
    if doc["bench"] == "ablation_recompute":
        validate_ablation_recompute(path, doc)
    if doc["bench"] == "bgpsdn_matrix":
        validate_matrix(path, doc)
    if doc["bench"] == "bench_scale":
        validate_scale(path, doc)

    print(f"{path}: ok ({doc['bench']}, {len(doc['points'])} points)")


def validate_chaos(path, doc):
    missing = CHAOS_PARAMS - set(doc["params"])
    if missing:
        fail(path, f"bench_chaos params missing {sorted(missing)}")
    labels = {point["label"] for point in doc["points"]}
    if labels != CHAOS_LABELS:
        fail(path, f"bench_chaos labels {sorted(labels)} != {sorted(CHAOS_LABELS)}")
    timeout = doc["params"]["timeout_s"]
    for i, point in enumerate(doc["points"]):
        where = f"points[{i}]"
        if not isinstance(point["extra"].get("fault"), str):
            fail(path, f"{where}.extra.fault must be the armed plan string")
        for v in point["values"]:
            if not 0 <= v <= timeout:
                fail(path, f"{where}: recovery {v} outside [0, {timeout}]")

    points = {point["label"]: point for point in doc["points"]}
    for n in range(1, 6):
        point = points[f"ha_failover_r{n}"]
        for key in CHAOS_HA_EXTRAS:
            if not isinstance(point["extra"].get(key), NUMBER):
                fail(path, f"ha_failover_r{n}.extra.{key} must be a number")
        if point["extra"]["replicas"] != n:
            fail(
                path,
                f"ha_failover_r{n}.extra.replicas is "
                f"{point['extra']['replicas']}, want {n}",
            )
    baseline = points["ha_failover_r1"]["median"]
    for n in range(2, 6):
        median = points[f"ha_failover_r{n}"]["median"]
        if median >= baseline:
            fail(
                path,
                f"ha_failover_r{n} median {median} not below the "
                f"single-controller baseline {baseline}",
            )
        if median >= 1.0:
            fail(
                path,
                f"ha_failover_r{n} median {median} not sub-second; the "
                f"standby takeover is not hiding the failover",
            )


def validate_ablation_recompute(path, doc):
    churn_labels = {
        f"churn{n}_{engine}"
        for n in ABLATION_CHURN_FLAPS
        for engine in ("incremental", "reference")
    }
    labels = {point["label"] for point in doc["points"]}
    want = ABLATION_DELAY_LABELS | churn_labels
    if labels != want:
        fail(path, f"ablation_recompute labels {sorted(labels)} != {sorted(want)}")
    points = {point["label"]: point for point in doc["points"]}
    for label in sorted(ABLATION_DELAY_LABELS):
        span = points[label]["extra"].get("batch_span_s_median")
        if not isinstance(span, NUMBER) or span < 0:
            fail(path, f"{label}.extra.batch_span_s_median must be >= 0")
    for n in ABLATION_CHURN_FLAPS:
        inc = points[f"churn{n}_incremental"]
        ref = points[f"churn{n}_reference"]
        for point, engine in ((inc, "incremental"), (ref, "reference")):
            for key in ABLATION_CHURN_EXTRAS:
                if not isinstance(point["extra"].get(key), NUMBER):
                    fail(path, f"churn{n}_{engine}.extra.{key} must be a number")
        # Virtual-time convergence is deterministic: the engines must agree
        # exactly, not approximately.
        if inc["median"] != ref["median"]:
            fail(
                path,
                f"churn{n}: convergence moved between engines "
                f"({inc['median']} vs {ref['median']})",
            )
    # The refactor's headline number, gated at the highest churn point.
    top = max(ABLATION_CHURN_FLAPS)
    inc_settles = points[f"churn{top}_incremental"]["extra"]["settles_median"]
    ref_settles = points[f"churn{top}_reference"]["extra"]["settles_median"]
    if ref_settles <= 0:
        fail(path, f"churn{top}_reference settled no vertices; sweep is vacuous")
    if inc_settles * 5 > ref_settles:
        fail(
            path,
            f"churn{top}: incremental settles {inc_settles} not 5x below "
            f"reference {ref_settles}",
        )


def validate_scale(path, doc):
    params = doc["params"]
    missing = SCALE_PARAMS - set(params)
    if missing:
        fail(path, f"bench_scale params missing {sorted(missing)}")
    for key in ("il_sizes", "caida_sizes"):
        sizes = params[key]
        if (
            not isinstance(sizes, list)
            or not sizes
            or any(not isinstance(s, int) or s < 1 for s in sizes)
        ):
            fail(path, f"bench_scale params.{key} must list positive integers")
    mem_size = params["mem_size"]
    if mem_size != params["il_sizes"][-1]:
        fail(
            path,
            f"mem_size {mem_size} is not the largest internet-like size "
            f"{params['il_sizes'][-1]}",
        )

    # The label set is fully determined by the size lists.
    want = {f"mem_compact_{mem_size}", f"mem_reference_{mem_size}"}
    for size in params["il_sizes"]:
        want.add(f"il{size}_withdrawal")
        want.add(f"il{size}_announcement")
    for size in params["caida_sizes"]:
        want.add(f"caida{size}_withdrawal")
    points = {point["label"]: point for point in doc["points"]}
    if set(points) != want:
        fail(path, f"bench_scale labels {sorted(points)} != {sorted(want)}")

    for label, point in sorted(points.items()):
        for key in SCALE_POINT_EXTRAS:
            if not isinstance(point["extra"].get(key), NUMBER):
                fail(path, f"{label}.extra.{key} must be a number")
        if not isinstance(point["extra"].get("rib_layout"), str):
            fail(path, f"{label}.extra.rib_layout must be a string")
        for v in point["values"]:
            # A negative convergence value is the bench's trial-failed
            # sentinel; it must never reach a committed document.
            if not isinstance(v, NUMBER) or v < 0:
                fail(path, f"{label}: trial value {v} marks a failed trial")

    mems = {}
    for layout in ("compact", "reference"):
        point = points[f"mem_{layout}_{mem_size}"]
        mem = point["extra"].get("mem")
        if not isinstance(mem, dict) or set(mem) != MEM_KEYS:
            fail(
                path,
                f"mem_{layout}_{mem_size}.extra.mem keys != {sorted(MEM_KEYS)}",
            )
        if any(not isinstance(v, int) or v < 0 for v in mem.values()):
            fail(path, f"mem_{layout}_{mem_size}.extra.mem values must be ints")
        if point["extra"]["rib_layout"] != layout:
            fail(path, f"mem_{layout}_{mem_size} ran layout "
                       f"{point['extra']['rib_layout']!r}")
        mems[layout] = mem

    # The memory pair runs the identical seeded trial: convergence must be
    # byte-identical across layouts (determinism), while the compact RIB
    # bytes undercut the reference fivefold (the point of the layout).
    compact = points[f"mem_compact_{mem_size}"]
    reference = points[f"mem_reference_{mem_size}"]
    if compact["values"] != reference["values"]:
        fail(
            path,
            f"mem pair convergence diverged between layouts "
            f"({compact['values']} vs {reference['values']})",
        )
    if mems["reference"]["rib_total"] <= 0:
        fail(path, "mem_reference rib_total is zero; the sweep is vacuous")
    if mems["compact"]["rib_total"] * SCALE_MEM_RATIO > mems["reference"]["rib_total"]:
        fail(
            path,
            f"compact rib_total {mems['compact']['rib_total']} not "
            f"{SCALE_MEM_RATIO}x below reference "
            f"{mems['reference']['rib_total']}",
        )
    if mems["reference"]["attr_registry"] != 0:
        fail(path, "reference layout reported attr_registry bytes")

    # The compact cell's model bytes are mirrored as flat counters.
    counters = doc["counters"]
    for key in MEM_KEYS - {"rib_total"}:
        name = f"mem.{key}"
        if name not in counters:
            fail(path, f"counters missing {name}")
        if counters[name] != mems["compact"][key]:
            fail(
                path,
                f"counters[{name}] {counters[name]} != mem_compact extra "
                f"{mems['compact'][key]}",
            )


def validate_matrix(path, doc):
    params = doc["params"]
    missing = MATRIX_PARAMS - set(params)
    if missing:
        fail(path, f"bgpsdn_matrix params missing {sorted(missing)}")
    if not isinstance(params["trials"], int) or params["trials"] < 1:
        fail(path, "bgpsdn_matrix params.trials must be a positive integer")
    axes = params["axes"]
    if not isinstance(axes, dict) or not axes:
        fail(path, "bgpsdn_matrix params.axes must be a non-empty object")
    for name, values in axes.items():
        if (
            not isinstance(values, list)
            or not values
            or any(not isinstance(v, str) for v in values)
        ):
            fail(path, f"axis {name!r} must list at least one string value")
    filters = params.get("filters")
    if filters is not None and (
        not isinstance(filters, list)
        or any(not isinstance(f, str) or "=" not in f for f in filters)
    ):
        fail(path, "bgpsdn_matrix params.filters must be 'axis=value' strings")

    product = 1
    for values in axes.values():
        product *= len(values)
    cells = len(doc["points"])
    if filters is None and cells != product:
        fail(path, f"{cells} cells but the axes declare a {product}-cell product")
    if filters is not None and not 1 <= cells <= product:
        fail(path, f"{cells} filtered cells outside [1, {product}]")

    labels = set()
    for i, point in enumerate(doc["points"]):
        where = f"points[{i}] ({point['label']!r})"
        if point["label"] in labels:
            fail(path, f"{where}: duplicate cell label")
        labels.add(point["label"])
        if point["n"] != params["trials"]:
            fail(path, f"{where}: n={point['n']} != trials={params['trials']}")
        coords = point["extra"].get("coords")
        if not isinstance(coords, dict):
            fail(path, f"{where}.extra.coords must be an object")
        if set(coords) != set(axes):
            fail(
                path,
                f"{where}: coords name {sorted(coords)}, axes are {sorted(axes)}",
            )
        for name, value in coords.items():
            if value not in axes[name]:
                fail(path, f"{where}: coord {name}={value!r} not a declared value")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        validate(path)


if __name__ == "__main__":
    main()
