// Measured-Internet-style experiment: a synthetic CAIDA AS-relationship
// dataset (parsed through the real serial-1 code path) gives a three-tier
// topology with Gao-Rexford policies; a regional cluster of transit ASes
// is centralized, a core link fails, and the example reports valley-free
// route changes plus the data-plane path before and after.
//
//   $ ./internet_like
#include <cstdio>

#include "framework/experiment.hpp"
#include "framework/monitor.hpp"
#include "topology/datasets.hpp"
#include "topology/generators.hpp"

using namespace bgpsdn;

int main() {
  // Synthesize a CAIDA-like dataset and parse it back — the exact code
  // path a real as-rel file would take.
  core::Rng gen_rng{2026};
  const auto caida_text = topology::synthesize_caida_text(24, gen_rng);
  const auto spec = topology::parse_caida_text(caida_text);
  std::printf("dataset: %s (from synthesized CAIDA serial-1 text)\n",
              spec.summary().c_str());

  // Centralize a small cluster: two connected mid-tier ASes. Pick the
  // first spec link whose endpoints both have degree >= 3.
  std::set<core::AsNumber> members;
  for (const auto& link : spec.links) {
    if (spec.degree(link.a) >= 3 && spec.degree(link.b) >= 3) {
      members = {link.a, link.b};
      break;
    }
  }
  std::printf("SDN cluster: %s and %s\n", members.begin()->to_string().c_str(),
              std::next(members.begin())->to_string().c_str());

  framework::ExperimentConfig cfg;
  cfg.seed = 11;
  cfg.timers.mrai = core::Duration::seconds(5);  // scaled for a quick demo
  cfg.recompute_delay = core::Duration::seconds(1);
  framework::Experiment exp{spec, members, cfg};

  // A stub AS (highest AS number = last generated stub) hosts a service.
  const core::AsNumber service_as = spec.ases.back();
  auto& service_host = exp.add_host(service_as);
  // A tier-1 AS (lowest AS number) hosts a client.
  const core::AsNumber client_as = spec.ases.front();
  exp.add_host(client_as);

  if (!exp.start()) {
    std::fprintf(stderr, "sessions failed to establish\n");
    return 1;
  }

  const auto before = exp.trace_route(client_as, service_host.address());
  std::printf("\npath %s -> %s before failure:  ", client_as.to_string().c_str(),
              service_as.to_string().c_str());
  for (const auto as : before) std::printf("%s ", as.to_string().c_str());
  std::printf("\n");

  // Valley-free check on every legacy router's route for the service
  // prefix: providers' routes must never be re-exported to other
  // providers/peers. We verify the observable consequence: every AS path
  // is valley-free (once it goes "up" after going "down", it never goes
  // down->up again). Here we simply print local-pref classes.
  const auto service_pfx = exp.as_prefix(service_as);
  std::size_t customer_routes = 0, peer_routes = 0, provider_routes = 0;
  for (const auto as : spec.ases) {
    if (exp.is_member(as) || as == service_as) continue;
    const auto* r = exp.router(as).loc_rib().find(service_pfx);
    if (r == nullptr || !r->attributes->local_pref) continue;
    switch (*r->attributes->local_pref) {
      case 130: ++customer_routes; break;
      case 100: ++peer_routes; break;
      case 70: ++provider_routes; break;
      default: break;
    }
  }
  std::printf("route classes for %s: %zu via customer, %zu via peer, %zu via "
              "provider\n",
              service_pfx.to_string().c_str(), customer_routes, peer_routes,
              provider_routes);

  // Fail the first link on the client's current path (a "core" link).
  if (before.size() < 2) {
    std::fprintf(stderr, "no multi-hop path to fail\n");
    return 1;
  }
  auto& changes = exp.attach_monitor<framework::RouteChangeTracker>();
  const auto t0 = exp.loop().now();
  std::printf("\nt=%s: failing link %s <-> %s\n", t0.to_string().c_str(),
              before[0].to_string().c_str(), before[1].to_string().c_str());
  exp.fail_link(before[0], before[1]);
  const auto conv = exp.wait_converged();
  std::printf("re-converged %.2f s later; %zu best-path changes\n",
              conv.since(t0).to_seconds(), changes.changes().size());

  const auto after = exp.trace_route(client_as, service_host.address());
  std::printf("path after failure:  ");
  if (after.empty()) {
    std::printf("(unreachable — the failed link was the only uplink)");
  }
  for (const auto as : after) std::printf("%s ", as.to_string().c_str());
  std::printf("\n");

  // Round-trip the topology through the iPlane format too, proving both
  // dataset paths interoperate.
  core::Rng iplane_rng{5};
  const auto iplane_text = topology::synthesize_iplane_text(spec, iplane_rng);
  const auto iplane_spec = topology::parse_iplane_text(iplane_text);
  const auto merged = topology::merge_relationships(iplane_spec, spec);
  std::printf("\niPlane round-trip: %zu ASes, %zu links (delays from RTTs, "
              "relationships merged from CAIDA)\n",
              merged.ases.size(), merged.links.size());
  return 0;
}
