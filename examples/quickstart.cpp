// Quickstart: the smallest complete hybrid BGP/SDN experiment.
//
// Builds a 4-AS clique where two ASes join the SDN cluster, announces a
// prefix from a legacy AS, waits for convergence, and prints what every
// routing table ended up with — the "hello world" of the framework.
//
//   $ ./quickstart
#include <cstdio>

#include "framework/experiment.hpp"
#include "topology/generators.hpp"

using namespace bgpsdn;

int main() {
  // 1. Describe the AS-level topology: a 4-AS full mesh.
  const auto spec = topology::clique(4);

  // 2. Pick the SDN cluster members; the rest stay legacy BGP routers.
  const std::set<core::AsNumber> members{core::AsNumber{3}, core::AsNumber{4}};

  // 3. Configure the experiment. Timers are scaled down from the
  //    paper-faithful Quagga defaults so the demo finishes instantly.
  framework::ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.timers.mrai = core::Duration::seconds(2);
  cfg.recompute_delay = core::Duration::millis(500);

  framework::Experiment exp{spec, members, cfg};
  std::printf("topology: %s; SDN members: AS3, AS4\n", spec.summary().c_str());

  // 4. AS1 (legacy) originates a prefix before the network boots.
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);

  // 5. Boot everything: BGP sessions (including the relayed cluster
  //    peerings) come up, routes propagate, the controller programs flows.
  if (!exp.start()) {
    std::fprintf(stderr, "sessions failed to establish\n");
    return 1;
  }
  std::printf("converged at virtual time %s\n",
              exp.loop().now().to_string().c_str());

  // 6. Inspect the outcome: the legacy router's view...
  const bgp::BgpRouter& as2 = exp.router(core::AsNumber{2});
  const bgp::Route* route = as2.loc_rib().find(pfx);
  std::printf("\nAS2 (legacy BGP) best route for %s:\n", pfx.to_string().c_str());
  std::printf("  AS path [%s], next hop %s, %zu candidate(s) in Adj-RIB-In\n",
              route->attributes->as_path.to_string().c_str(),
              route->attributes->next_hop.to_string().c_str(),
              as2.adj_rib_in().candidates(pfx).size());

  // ...the controller's decision for the cluster...
  const auto* decision = exp.idr_controller()->decision_for(pfx);
  std::printf("\nIDR controller decision for %s:\n", pfx.to_string().c_str());
  for (const auto& [dpid, hop] : decision->hops) {
    std::printf("  switch dpid %llu (AS%u): distance %u, AS path [%s]\n",
                static_cast<unsigned long long>(dpid),
                exp.idr_controller()->switch_graph().owner_of(dpid)->value(),
                hop.distance, decision->as_paths.at(dpid).to_string().c_str());
  }

  // ...and the switches' flow tables.
  for (const auto as : members) {
    std::printf("\nAS%u switch flow table:\n", as.value());
    for (const auto& e : exp.member_switch(as).table().entries()) {
      std::printf("  %s\n", e.to_string().c_str());
    }
  }

  // 7. Live experiment control: withdraw and watch it disappear.
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  exp.wait_converged();
  std::printf("\nafter withdrawal: AS2 has %s, cluster reachable=%s\n",
              as2.loc_rib().find(pfx) == nullptr ? "no route" : "a route!?",
              exp.idr_controller()->decision_for(pfx)->hops.empty() ? "no"
                                                                    : "yes");
  std::printf("\ncollector observed %zu routing events\n",
              exp.collector()->observations().size());
  return 0;
}
