// One Fig.-2 data point, narrated: a 16-AS clique with a configurable SDN
// fraction, paper-faithful Quagga timers, and a full trace of what happens
// after the origin withdraws its prefix — BGP path hunting on the legacy
// side versus one delayed recomputation on the controller side.
//
//   $ ./withdrawal_clique [sdn_count (default 8)]
#include <cstdio>
#include <cstdlib>

#include "framework/experiment.hpp"
#include "framework/monitor.hpp"
#include "topology/generators.hpp"

using namespace bgpsdn;

int main(int argc, char** argv) {
  const std::size_t n = 16;
  const std::size_t sdn = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  if (sdn >= n) {
    std::fprintf(stderr, "sdn_count must be < %zu (AS1 stays legacy)\n", n);
    return 1;
  }

  framework::ExperimentConfig cfg;  // paper-faithful: MRAI 30 s, recompute 2 s
  cfg.seed = 7;
  cfg.retain_logs = true;  // keep records for the narrated trace

  const auto spec = topology::clique(n);
  std::set<core::AsNumber> members;
  for (std::size_t i = 0; i < sdn; ++i) {
    members.insert(core::AsNumber{static_cast<std::uint32_t>(n - i)});
  }
  framework::Experiment exp{spec, members, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);

  std::printf("16-AS clique, %zu SDN members, MRAI %.0fs, recompute delay %.1fs\n",
              sdn, cfg.timers.mrai.to_seconds(),
              cfg.recompute_delay.to_seconds());
  if (!exp.start()) return 1;
  std::printf("initial convergence done at %s\n\n",
              exp.loop().now().to_string().c_str());

  // Instrument: route changes and update rate from here on.
  exp.logger().clear();
  auto& changes = exp.attach_monitor<framework::RouteChangeTracker>();
  auto& rate = exp.attach_monitor<framework::UpdateRateMonitor>(
      core::Duration::seconds(10));

  const auto t0 = exp.loop().now();
  std::printf("t=%s: AS1 withdraws %s\n", t0.to_string().c_str(),
              pfx.to_string().c_str());
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  const auto conv = exp.wait_converged();

  std::printf("converged %.2f s after the withdrawal%s\n\n",
              conv.since(t0).to_seconds(),
              conv.timed_out ? " (TIMED OUT)" : "");

  std::printf("update rate (10 s buckets, BGP updates + speaker messages):\n%s\n",
              rate.to_string().c_str());

  std::printf("best-path changes during hunting (first 25):\n");
  std::size_t shown = 0;
  for (const auto& c : changes.changes()) {
    if (++shown > 25) break;
    std::printf("  %s  %-10s %s %s\n", c.when.to_string().c_str(),
                c.router.c_str(), c.lost ? "LOST" : "->", c.detail.c_str());
  }
  std::printf("  (%zu total)\n\n", changes.changes().size());

  const auto* ctrl = exp.idr_controller();
  if (ctrl != nullptr) {
    std::printf("controller: %llu recompute passes, %llu flow adds, "
                "%llu flow deletes, %llu loop-pruned routes\n",
                static_cast<unsigned long long>(ctrl->counters().recompute_passes),
                static_cast<unsigned long long>(ctrl->counters().flow_adds),
                static_cast<unsigned long long>(ctrl->counters().flow_deletes),
                static_cast<unsigned long long>(
                    ctrl->counters().routes_pruned_loop));
  }
  std::printf("network: %llu packets delivered, %llu lost to down links\n",
              static_cast<unsigned long long>(exp.network().stats().delivered),
              static_cast<unsigned long long>(
                  exp.network().stats().dropped_link_down));
  return 0;
}
