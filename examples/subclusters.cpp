// Disjoint sub-clusters under one controller — the paper's third design
// goal, live: "an intra-cluster link failure does not isolate the
// controlled ASes: paths over the legacy Internet could still connect the
// sub-clusters."
//
// A connected 3-member cluster sits in the middle of a legacy ring; a
// cluster link fails, splitting the cluster. The controller detects the
// partition from PortStatus, re-runs the AS-topology transformation, and
// the stranded sub-cluster keeps routing over a legacy bridge.
//
//   $ ./subclusters
#include <cstdio>

#include "framework/experiment.hpp"
#include "topology/generators.hpp"

using namespace bgpsdn;

namespace {

void show_cluster_state(framework::Experiment& exp, const net::Prefix& pfx) {
  const auto comps = exp.idr_controller()->switch_graph().components();
  std::printf("  cluster components: %zu (", comps.size());
  for (std::size_t i = 0; i < comps.size(); ++i) {
    std::printf("%s{", i > 0 ? " " : "");
    for (std::size_t j = 0; j < comps[i].size(); ++j) {
      std::printf("%sAS%u", j > 0 ? "," : "",
                  exp.idr_controller()
                      ->switch_graph()
                      .owner_of(comps[i][j])
                      ->value());
    }
    std::printf("}");
  }
  std::printf(")\n");
  const auto* d = exp.idr_controller()->decision_for(pfx);
  for (const auto as : exp.members()) {
    const auto dpid = exp.member_switch(as).dpid();
    if (d != nullptr && d->reachable(dpid)) {
      std::printf("  %s routes %s via AS path [%s]\n", as.to_string().c_str(),
                  pfx.to_string().c_str(),
                  d->as_paths.at(dpid).to_string().c_str());
    } else {
      std::printf("  %s: NO route for %s\n", as.to_string().c_str(),
                  pfx.to_string().c_str());
    }
  }
}

}  // namespace

int main() {
  // Ring of 8: members 4-5-6 form a connected mid-ring cluster.
  const auto spec = topology::ring(8);
  const std::set<core::AsNumber> members{core::AsNumber{4}, core::AsNumber{5},
                                         core::AsNumber{6}};
  framework::ExperimentConfig cfg;
  cfg.seed = 3;
  cfg.timers.mrai = core::Duration::seconds(2);
  cfg.recompute_delay = core::Duration::millis(500);
  framework::Experiment exp{spec, members, cfg};

  auto& origin_host = exp.add_host(core::AsNumber{1});
  exp.add_host(core::AsNumber{6});
  const auto pfx = exp.as_prefix(core::AsNumber{1});

  if (!exp.start()) return 1;
  std::printf("before the partition:\n");
  show_cluster_state(exp, pfx);
  auto path = exp.trace_route(core::AsNumber{6}, origin_host.address());
  std::printf("  data path AS6 -> AS1:");
  for (const auto as : path) std::printf(" %s", as.to_string().c_str());
  std::printf("\n\n");

  // Split the cluster: AS5 <-> AS6 dies. AS6 is now a sub-cluster of its
  // own; its only neighbors are AS7 (legacy) and the dead link.
  std::printf("failing intra-cluster link AS5 <-> AS6...\n\n");
  exp.fail_link(core::AsNumber{5}, core::AsNumber{6});
  exp.wait_converged();

  std::printf("after the partition:\n");
  show_cluster_state(exp, pfx);
  path = exp.trace_route(core::AsNumber{6}, origin_host.address());
  std::printf("  data path AS6 -> AS1:");
  if (path.empty()) std::printf(" (unreachable)");
  for (const auto as : path) std::printf(" %s", as.to_string().c_str());
  std::printf("\n\n");

  if (!path.empty()) {
    std::printf("the stranded sub-cluster {AS6} was bridged over the legacy "
                "Internet (via AS7), as the paper's design goal requires.\n");
  }

  // Restore and verify healing.
  exp.restore_link(core::AsNumber{5}, core::AsNumber{6});
  exp.wait_converged();
  std::printf("\nafter restoring the link: cluster connected again = %s\n",
              exp.idr_controller()->switch_graph().is_connected() ? "yes"
                                                                  : "no");
  return 0;
}
