// The demo's end-to-end application, in measurable form.
//
// The paper demos "how [centralization] affects an end-to-end video
// application under different scenarios". The video stream's health is a
// proxy for packet loss during convergence, so this example runs a
// constant-rate probe stream (30 probes/s ~ a video frame rate) across the
// network during a route withdrawal-and-reannouncement event, once with
// 0 SDN members and once with 12, and compares the blackout windows.
//
//   $ ./video_stream
#include <cstdio>

#include "framework/connectivity.hpp"
#include "framework/experiment.hpp"
#include "topology/generators.hpp"

using namespace bgpsdn;

namespace {

struct StreamResult {
  double conv_seconds{0};
  framework::ConnectivityReport report;
};

StreamResult run_scenario(std::size_t sdn_count) {
  const std::size_t n = 16;
  framework::ExperimentConfig cfg;  // paper-faithful timers
  cfg.seed = 99;

  // The "video server" lives in a dual-homed stub (AS 100) as in the
  // fail-over experiment: primary uplink to AS1, backup via AS101 -> AS16.
  auto spec = topology::clique(n);
  const core::AsNumber server_as{100}, mid{101}, client_as{8};
  spec.add_as(server_as);
  spec.add_as(mid);
  spec.add_link(server_as, core::AsNumber{1});
  spec.add_link(server_as, mid);
  spec.add_link(mid, core::AsNumber{16});

  std::set<core::AsNumber> members;
  for (std::size_t i = 0; i < sdn_count; ++i) {
    // Leave AS8 (the client) legacy; members from the top, excluding 8.
    const auto as = static_cast<std::uint32_t>(n - i);
    if (as == client_as.value()) continue;
    members.insert(core::AsNumber{as});
  }

  framework::Experiment exp{spec, members, cfg};
  auto& server = exp.add_host(server_as);
  auto& client = exp.add_host(client_as);
  if (!exp.start()) return {};

  auto& stream = exp.attach_monitor<framework::ConnectivityMonitor>(
      client, server, core::Duration::millis(33));
  stream.start();
  exp.run_for(core::Duration::seconds(2));  // healthy stream baseline

  // The event: the server's primary uplink fails mid-stream.
  const auto t0 = exp.loop().now();
  exp.fail_link(server_as, core::AsNumber{1});
  const auto conv = exp.wait_converged();
  stream.stop();
  exp.run_for(core::Duration::seconds(2));  // drain in-flight replies

  StreamResult result;
  result.conv_seconds = conv.since(t0).to_seconds();
  result.report = stream.report();
  return result;
}

void print_result(const char* label, const StreamResult& r) {
  std::printf("%s\n", label);
  std::printf("  control-plane convergence: %.2f s\n", r.conv_seconds);
  std::printf("  stream: %llu probes judged, %llu answered (%.1f%% delivered)\n",
              static_cast<unsigned long long>(r.report.sent),
              static_cast<unsigned long long>(r.report.answered),
              r.report.delivery_ratio * 100.0);
  std::printf("  longest video blackout: %.2f s (starting at %s)\n\n",
              r.report.longest_blackout.to_seconds(),
              r.report.blackout_start.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("video-stream proxy: 30 probes/s client(AS8) -> server(AS100), "
              "primary uplink fails mid-stream\n\n");
  const auto legacy = run_scenario(0);
  print_result("pure BGP (0/16 centralized):", legacy);
  const auto hybrid = run_scenario(12);
  print_result("hybrid (12/16 centralized):", hybrid);

  if (hybrid.report.longest_blackout < legacy.report.longest_blackout) {
    std::printf("centralization shortened the user-visible blackout by %.2f s "
                "(%.0f%%)\n",
                (legacy.report.longest_blackout - hybrid.report.longest_blackout)
                    .to_seconds(),
                100.0 * (1.0 - hybrid.report.longest_blackout.to_seconds() /
                                   legacy.report.longest_blackout.to_seconds()));
  } else {
    std::printf("no blackout improvement in this run\n");
  }
  return 0;
}
